(* Tests for the Noc_obs observability subsystem: leveled logging,
   counters, the JSON parser, the tracer with its Chrome-trace checker,
   and the EAS decision log. Every test that enables a collector resets
   it again under [Fun.protect] so obs state never leaks between
   tests. *)

module Log = Noc_obs.Log
module Counters = Noc_obs.Counters
module Json = Noc_obs.Json
module Trace = Noc_obs.Trace
module Decisions = Noc_obs.Decisions
module Trace_check = Noc_obs.Trace_check
module Eas = Noc_eas.Eas
module Platform = Noc_noc.Platform
module Builder = Noc_ctg.Builder

let with_obs f =
  Counters.reset ();
  Trace.reset ();
  Decisions.reset ();
  Counters.set_enabled true;
  Trace.set_enabled true;
  Decisions.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Counters.set_enabled false;
      Trace.set_enabled false;
      Decisions.set_enabled false;
      Counters.reset ();
      Trace.reset ();
      Decisions.reset ())
    f

(* A small pipeline whose every stage can run on any PE of a 2x2 mesh:
   enough structure for the scheduler to make non-trivial choices. *)
let small_workload () =
  let platform = Platform.homogeneous_mesh ~cols:2 ~rows:2 in
  let b = Builder.create ~n_pes:4 in
  let n = 6 in
  let prev = ref None in
  for i = 0 to n - 1 do
    let t =
      Builder.add_uniform_task b ~time:10. ~energy:5.
        ?deadline:(if i = n - 1 then Some 200. else None)
        ()
    in
    (match !prev with
    | Some p -> Builder.connect b ~src:p ~dst:t ~volume:64.
    | None -> ());
    prev := Some t
  done;
  (platform, Builder.build_exn b, n)

(* Log *)

let test_log_levels () =
  let round lvl =
    Alcotest.(check (option string))
      (Log.to_string lvl) (Some (Log.to_string lvl))
      (Option.map Log.to_string (Log.of_string (Log.to_string lvl)))
  in
  List.iter round [ Log.Error; Log.Warn; Log.Info; Log.Debug ];
  Alcotest.(check bool) "quiet is error" true (Log.of_string "quiet" = Some Log.Error);
  Alcotest.(check bool) "warning alias" true (Log.of_string "WARNING" = Some Log.Warn);
  Alcotest.(check bool) "unknown rejected" true (Log.of_string "chatty" = None);
  let saved = Log.level () in
  Fun.protect
    ~finally:(fun () -> Log.set_level saved)
    (fun () ->
      Log.set_level Log.Debug;
      Alcotest.(check string) "set/get" "debug" (Log.to_string (Log.level ())))

(* Counters *)

let test_counters_basics () =
  with_obs (fun () ->
      let c = Counters.counter "test.obs.basics" in
      Alcotest.(check string) "name" "test.obs.basics" (Counters.name c);
      Counters.incr c;
      Counters.add c 41;
      Alcotest.(check int) "value" 42 (Counters.value c);
      Alcotest.(check bool) "interned" true
        (Counters.value (Counters.counter "test.obs.basics") = 42);
      Alcotest.(check (option int)) "in snapshot" (Some 42)
        (List.assoc_opt "test.obs.basics" (Counters.snapshot ()));
      Counters.reset ();
      Alcotest.(check int) "reset zeroes" 0 (Counters.value c))

let test_counters_disabled_noop () =
  Counters.reset ();
  Counters.set_enabled false;
  let c = Counters.counter "test.obs.disabled" in
  Counters.incr c;
  Counters.add c 10;
  Alcotest.(check int) "disabled increments dropped" 0 (Counters.value c)

let test_histogram_summary () =
  with_obs (fun () ->
      let h = Counters.histogram "test.obs.hist" in
      (* Arrival order must not matter to the summary. *)
      List.iter (Counters.observe h) [ 3.; 1.; 2.; 5.; 4. ];
      match List.assoc_opt "test.obs.hist" (Counters.summaries ()) with
      | None -> Alcotest.fail "histogram missing from summaries"
      | Some s ->
        Alcotest.(check int) "count" 5 s.Counters.count;
        Alcotest.(check (float 1e-12)) "min" 1. s.Counters.min;
        Alcotest.(check (float 1e-12)) "max" 5. s.Counters.max;
        Alcotest.(check (float 1e-12)) "mean" 3. s.Counters.mean;
        Alcotest.(check (float 1e-12)) "p50" 3. s.Counters.p50)

(* Json *)

let test_json_parse () =
  let ok text = match Json.parse text with
    | Ok v -> v
    | Error e -> Alcotest.failf "expected %S to parse: %s" text e
  in
  (match ok {|{"a": [1, 2.5, -3e2], "b": "x\ny", "c": true, "d": null}|} with
  | Json.Obj fields ->
    Alcotest.(check int) "fields" 4 (List.length fields);
    (match List.assoc "a" fields with
    | Json.List [ Json.Number a; Json.Number b; Json.Number c ] ->
      Alcotest.(check (float 1e-12)) "int" 1. a;
      Alcotest.(check (float 1e-12)) "frac" 2.5 b;
      Alcotest.(check (float 1e-12)) "exp" (-300.) c
    | _ -> Alcotest.fail "array shape");
    Alcotest.(check bool) "escape decoded" true
      (List.assoc "b" fields = Json.String "x\ny")
  | _ -> Alcotest.fail "not an object");
  List.iter
    (fun text ->
      match Json.parse text with
      | Ok _ -> Alcotest.failf "expected %S to be rejected" text
      | Error _ -> ())
    [ "{"; "[1,]"; "{\"a\" 1}"; "nul"; "\"unterminated"; "1 2"; "" ]

let test_json_escape_and_number () =
  (match Json.parse (Json.escape_string "a\"b\\c\n\t\x01") with
  | Ok (Json.String s) -> Alcotest.(check string) "round trip" "a\"b\\c\n\t\x01" s
  | _ -> Alcotest.fail "escaped string does not parse back");
  Alcotest.(check string) "inf" "\"inf\"" (Json.number infinity);
  Alcotest.(check string) "-inf" "\"-inf\"" (Json.number neg_infinity);
  Alcotest.(check string) "nan" "\"nan\"" (Json.number nan);
  match Json.parse (Json.number 0.1) with
  | Ok (Json.Number f) -> Alcotest.(check (float 0.)) "finite round trip" 0.1 f
  | _ -> Alcotest.fail "number does not parse back"

(* Canonical printer *)

let test_json_to_string_canonical () =
  let doc =
    Json.Obj
      [
        ("b", Json.Number 1.);
        ("a", Json.List [ Json.Null; Json.Bool false ]);
        ("b", Json.String "dup");
      ]
  in
  Alcotest.(check string) "keys sorted, duplicates kept in input order"
    {|{"a":[null,false],"b":1,"b":"dup"}|} (Json.to_string doc);
  Alcotest.(check string) "shortest round-trip float" "0.1"
    (Json.to_string (Json.Number 0.1));
  Alcotest.(check string) "integral float without fraction" "3"
    (Json.to_string (Json.Number 3.));
  Alcotest.(check string) "negative zero kept" "-0"
    (Json.to_string (Json.Number (-0.)));
  Alcotest.(check string) "infinity uses the number convention" "\"inf\""
    (Json.to_string (Json.Number infinity));
  (* Structurally equal documents print byte-identically regardless of
     how their objects were assembled. *)
  Alcotest.(check string) "field order never shows"
    (Json.to_string (Json.Obj [ ("x", Json.Number 2.); ("y", Json.Null) ]))
    (Json.to_string (Json.Obj [ ("y", Json.Null); ("x", Json.Number 2.) ]))

(* qcheck: print/parse round trip on arbitrary documents. *)

let json_gen =
  let open QCheck.Gen in
  let finite_float =
    oneof
      [
        float;
        oneofl
          [ 0.; -0.; 0.1; 1e-300; -1.5e300; 1e16; 12345678901234567.; 1e22 ];
      ]
    >|= fun f -> if Float.is_finite f then f else 0.
  in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun f -> Json.Number f) finite_float;
        map (fun s -> Json.String s) (small_string ~gen:char);
      ]
  in
  sized
  @@ fix (fun self n ->
         if n = 0 then scalar
         else
           frequency
             [
               (2, scalar);
               ( 1,
                 map
                   (fun l -> Json.List l)
                   (list_size (int_bound 4) (self (n / 2))) );
               ( 1,
                 map
                   (fun kvs -> Json.Obj kvs)
                   (list_size (int_bound 4)
                      (pair (small_string ~gen:printable) (self (n / 2)))) );
             ])

(* to_string sorts object keys, so parsing the printed form yields the
   canonicalized document: same tree with every object key-sorted
   (stable, so duplicate keys keep their input order). *)
let rec canonical = function
  | (Json.Null | Json.Bool _ | Json.Number _ | Json.String _) as v -> v
  | Json.List l -> Json.List (List.map canonical l)
  | Json.Obj kvs ->
    Json.Obj
      (List.stable_sort
         (fun (a, _) (b, _) -> String.compare a b)
         (List.map (fun (k, v) -> (k, canonical v)) kvs))

let qcheck_json_roundtrip =
  QCheck.Test.make ~name:"json print/parse round trip" ~count:500
    (QCheck.make ~print:Json.to_string json_gen)
    (fun v ->
      let printed = Json.to_string v in
      match Json.parse printed with
      | Error e -> QCheck.Test.fail_reportf "%S does not re-parse: %s" printed e
      | Ok v' ->
        if v' <> canonical v then
          QCheck.Test.fail_reportf "re-parse is not the canonical document";
        (* Printing is idempotent: the canonical form is a fixpoint. *)
        String.equal (Json.to_string v') printed)

(* Trace + Trace_check on a real scheduler run *)

let test_trace_export_validates () =
  with_obs (fun () ->
      let platform, ctg, _ = small_workload () in
      ignore (Eas.schedule platform ctg);
      Alcotest.(check bool) "spans recorded" true (Trace.event_count () > 0);
      let text = Trace.export () in
      (match Trace_check.check ~require_counters:true text with
      | Ok () -> ()
      | Error e -> Alcotest.failf "exported trace rejected: %s" e);
      (* The export must itself be the JSON our own parser accepts, and
         carry the scheduler's headline counter. *)
      match Json.parse text with
      | Error e -> Alcotest.failf "export not valid JSON: %s" e
      | Ok doc -> (
        match Json.member "otherData" doc with
        | Some other -> (
          match Json.member "counters" other with
          | Some (Json.Obj counters) ->
            Alcotest.(check bool) "F(i,k) counter exported" true
              (List.mem_assoc "eas.finish_time.evaluations" counters)
          | _ -> Alcotest.fail "otherData.counters missing")
        | None -> Alcotest.fail "otherData missing"))

let test_trace_parallel_campaign_validates () =
  with_obs (fun () ->
      ignore
        (Noc_experiments.Random_suite.run ~jobs:2 ~indices:[ 0; 1; 2; 3 ]
           ~scale:0.08 Noc_tgff.Category.Category_i);
      let text = Trace.export () in
      match Trace_check.check ~require_counters:true text with
      | Ok () -> ()
      | Error e -> Alcotest.failf "pool-domain trace rejected: %s" e)

let test_trace_check_rejects_malformed () =
  let reject label text =
    match Trace_check.check text with
    | Ok () -> Alcotest.failf "%s: should have been rejected" label
    | Error _ -> ()
  in
  reject "bad JSON" "{";
  reject "missing traceEvents" {|{"otherData": {"schema": "nocsched/trace/v1"}}|};
  reject "wrong schema"
    {|{"traceEvents": [], "otherData": {"schema": "bogus/v9"}}|};
  reject "unknown phase"
    {|{"traceEvents": [{"name": "e", "ph": "Z", "pid": 0, "tid": 0, "ts": 0}],
       "otherData": {"schema": "nocsched/trace/v1"}}|};
  reject "negative dur"
    {|{"traceEvents": [{"name": "e", "ph": "X", "pid": 0, "tid": 0, "ts": 0,
                        "dur": -1}],
       "otherData": {"schema": "nocsched/trace/v1"}}|};
  reject "straddling spans"
    {|{"traceEvents": [
        {"name": "a", "ph": "X", "pid": 0, "tid": 0, "ts": 0, "dur": 10},
        {"name": "b", "ph": "X", "pid": 0, "tid": 0, "ts": 5, "dur": 10}],
       "otherData": {"schema": "nocsched/trace/v1"}}|};
  match
    Trace_check.check ~require_counters:true
      {|{"traceEvents": [], "otherData": {"schema": "nocsched/trace/v1"}}|}
  with
  | Ok () -> Alcotest.fail "counters requirement not enforced"
  | Error _ -> ()

(* Decision log *)

let decision_lines () =
  Decisions.export_jsonl () |> String.split_on_char '\n'
  |> List.filter (fun l -> l <> "")
  |> List.map (fun line ->
         match Json.parse line with
         | Ok (Json.Obj fields) -> fields
         | Ok _ -> Alcotest.failf "decision line is not an object: %s" line
         | Error e -> Alcotest.failf "decision line unparseable (%s): %s" e line)

let int_field name fields =
  match List.assoc_opt name fields with
  | Some (Json.Number f) -> int_of_float f
  | _ -> Alcotest.failf "decision record lacks integer %S" name

let test_decision_log_replays_placements () =
  with_obs (fun () ->
      let platform, ctg, n_tasks = small_workload () in
      ignore (Decisions.with_run "test" (fun () -> Eas.schedule platform ctg));
      let lines = decision_lines () in
      Alcotest.(check bool) "records made" true (List.length lines > 0);
      (* Every level-scheduler pass commits each task exactly once, so
         the record count is a whole multiple of the task count... *)
      Alcotest.(check int) "one record per task per pass" 0
        (List.length lines mod n_tasks);
      (* ...and within the first pass, tasks 0..n-1 each appear once. *)
      let first_pass = List.filteri (fun i _ -> i < n_tasks) lines in
      let tasks = List.map (int_field "task") first_pass in
      Alcotest.(check (list int)) "first pass covers all tasks"
        (List.init n_tasks Fun.id)
        (List.sort compare tasks);
      List.iter
        (fun fields ->
          let chosen = int_field "chosen" fields in
          let candidates =
            match List.assoc_opt "candidates" fields with
            | Some (Json.List cs) ->
              List.map
                (fun c ->
                  match c with
                  | Json.Obj c -> (int_field "pe" c, List.assoc_opt "f" c)
                  | _ -> Alcotest.fail "candidate is not an object")
                cs
            | _ -> Alcotest.fail "candidates missing"
          in
          match List.assoc_opt chosen candidates with
          | None -> Alcotest.failf "chosen PE %d not among candidates" chosen
          | Some f ->
            Alcotest.(check bool) "chosen_f is the chosen candidate's F" true
              (List.assoc_opt "chosen_f" fields = f))
        lines)

let test_decision_log_disabled_noop () =
  Decisions.reset ();
  Decisions.set_enabled false;
  Decisions.record ~task:0 ~rule:"deadline" ~chosen:1 ~budgeted_deadline:10.
    ~finishes:[| 1.; 2. |];
  Alcotest.(check int) "disabled record dropped" 0 (Decisions.count ())

let suite =
  [
    Alcotest.test_case "log levels" `Quick test_log_levels;
    Alcotest.test_case "counters" `Quick test_counters_basics;
    Alcotest.test_case "counters disabled" `Quick test_counters_disabled_noop;
    Alcotest.test_case "histogram summary" `Quick test_histogram_summary;
    Alcotest.test_case "json parse" `Quick test_json_parse;
    Alcotest.test_case "json escape/number" `Quick test_json_escape_and_number;
    Alcotest.test_case "json canonical printer" `Quick
      test_json_to_string_canonical;
    QCheck_alcotest.to_alcotest qcheck_json_roundtrip;
    Alcotest.test_case "trace export validates" `Quick test_trace_export_validates;
    Alcotest.test_case "trace of parallel campaign validates" `Slow
      test_trace_parallel_campaign_validates;
    Alcotest.test_case "trace checker rejects malformed" `Quick
      test_trace_check_rejects_malformed;
    Alcotest.test_case "decision log replays placements" `Quick
      test_decision_log_replays_placements;
    Alcotest.test_case "decision log disabled" `Quick
      test_decision_log_disabled_noop;
  ]
