(* Tests for the honeycomb topology extension (paper Sec. 7) and its
   table-based deterministic routing. *)

module Topology = Noc_noc.Topology
module Routing = Noc_noc.Routing
module Platform = Noc_noc.Platform

let hc = Topology.honeycomb ~cols:4 ~rows:4

let test_degree_at_most_three () =
  for i = 0 to Topology.n_nodes hc - 1 do
    let deg = List.length (Topology.neighbours hc i) in
    Alcotest.(check bool) "degree <= 3" true (deg >= 1 && deg <= 3)
  done

let test_brick_wall_pattern () =
  (* Vertical link between (x, y) and (x, y+1) exactly when x+y even. *)
  Alcotest.(check bool) "(0,0)-(0,1) linked" true
    (Topology.are_neighbours hc (Topology.index hc ~x:0 ~y:0) (Topology.index hc ~x:0 ~y:1));
  Alcotest.(check bool) "(1,0)-(1,1) not linked" false
    (Topology.are_neighbours hc (Topology.index hc ~x:1 ~y:0) (Topology.index hc ~x:1 ~y:1));
  Alcotest.(check bool) "(1,1)-(1,2) linked" true
    (Topology.are_neighbours hc (Topology.index hc ~x:1 ~y:1) (Topology.index hc ~x:1 ~y:2));
  Alcotest.(check bool) "rows fully linked" true
    (Topology.are_neighbours hc 0 1 && Topology.are_neighbours hc 1 2)

let test_connected () =
  let dist = Topology.bfs_distances hc 0 in
  Array.iteri
    (fun i d -> Alcotest.(check bool) (Printf.sprintf "node %d reachable" i) true (d >= 0))
    dist

let test_distance_longer_than_mesh () =
  (* Fewer links than the mesh means some pairs are farther apart. *)
  let mesh = Topology.mesh ~cols:4 ~rows:4 in
  let total topo =
    let acc = ref 0 in
    for i = 0 to 15 do
      for j = 0 to 15 do
        acc := !acc + Topology.distance topo i j
      done
    done;
    !acc
  in
  Alcotest.(check bool) "honeycomb paths are longer on average" true
    (total hc > total mesh)

let test_no_xy_geometry () =
  let expect_invalid f =
    Alcotest.(check bool) "Invalid_argument" true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  expect_invalid (fun () -> Topology.deltas hc 0 5);
  expect_invalid (fun () -> Topology.step hc 0 ~dx:1 ~dy:0)

let test_routes_valid () =
  for src = 0 to 15 do
    for dst = 0 to 15 do
      let route = Routing.route hc ~src ~dst in
      Alcotest.(check int) "starts at src" src (List.hd route);
      Alcotest.(check int) "ends at dst" dst (List.nth route (List.length route - 1));
      Alcotest.(check int) "minimal" (Topology.distance hc src dst + 1) (List.length route);
      let rec contiguous = function
        | a :: (b :: _ as rest) -> Topology.are_neighbours hc a b && contiguous rest
        | [ _ ] | [] -> true
      in
      Alcotest.(check bool) "contiguous" true (contiguous route)
    done
  done

let test_routes_deterministic () =
  Alcotest.(check (list int)) "repeatable" (Routing.route hc ~src:3 ~dst:12)
    (Routing.route hc ~src:3 ~dst:12)

let test_all_links_degree_sum () =
  let n_links = List.length (Routing.all_links hc) in
  let degree_sum =
    List.fold_left
      (fun acc i -> acc + List.length (Topology.neighbours hc i))
      0
      (List.init (Topology.n_nodes hc) Fun.id)
  in
  Alcotest.(check int) "one directed link per adjacency" degree_sum n_links

let test_platform_and_scheduling () =
  (* EAS must produce a feasible schedule on a honeycomb platform. *)
  let platform = Platform.heterogeneous ~seed:42 hc () in
  let params = { Noc_tgff.Params.default with n_tasks = 40 } in
  let ctg = Noc_tgff.Generate.generate ~params ~platform ~seed:0 in
  let s = (Noc_eas.Eas.schedule platform ctg).Noc_eas.Eas.schedule in
  Alcotest.(check (list string)) "feasible on honeycomb" []
    (List.map
       (Format.asprintf "%a" Noc_sched.Validate.pp_violation)
       (Noc_sched.Validate.check platform ctg s))

let test_replay_on_honeycomb () =
  let platform = Platform.heterogeneous ~seed:42 hc () in
  let params = { Noc_tgff.Params.default with n_tasks = 40 } in
  let ctg = Noc_tgff.Generate.generate ~params ~platform ~seed:1 in
  let planned = (Noc_eas.Eas.schedule platform ctg).Noc_eas.Eas.schedule in
  let outcome = Noc_sim.Executor.run platform ctg planned in
  Alcotest.(check (float 1e-6)) "replays exactly" 0. outcome.Noc_sim.Executor.waiting_time

let test_invalid_honeycomb () =
  Alcotest.(check bool) "1xN rejected" true
    (try
       ignore (Topology.honeycomb ~cols:1 ~rows:3);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "degree at most 3" `Quick test_degree_at_most_three;
    Alcotest.test_case "brick-wall pattern" `Quick test_brick_wall_pattern;
    Alcotest.test_case "connected" `Quick test_connected;
    Alcotest.test_case "longer than mesh" `Quick test_distance_longer_than_mesh;
    Alcotest.test_case "no XY geometry" `Quick test_no_xy_geometry;
    Alcotest.test_case "routes valid and minimal" `Quick test_routes_valid;
    Alcotest.test_case "routes deterministic" `Quick test_routes_deterministic;
    Alcotest.test_case "all links" `Quick test_all_links_degree_sum;
    Alcotest.test_case "EAS schedules on honeycomb" `Slow test_platform_and_scheduling;
    Alcotest.test_case "exact replay on honeycomb" `Slow test_replay_on_honeycomb;
    Alcotest.test_case "invalid honeycomb rejected" `Quick test_invalid_honeycomb;
  ]
