(* Tests for Noc_noc.Topology. *)

module Topology = Noc_noc.Topology

let mesh33 = Topology.mesh ~cols:3 ~rows:3
let torus33 = Topology.torus ~cols:3 ~rows:3

let test_dimensions () =
  Alcotest.(check int) "nodes" 9 (Topology.n_nodes mesh33);
  Alcotest.(check int) "cols" 3 (Topology.cols mesh33);
  Alcotest.(check int) "rows" 3 (Topology.rows mesh33)

let test_coords_roundtrip () =
  for i = 0 to 8 do
    let x, y = Topology.coords mesh33 i in
    Alcotest.(check int) "roundtrip" i (Topology.index mesh33 ~x ~y)
  done

let test_coords_row_major () =
  Alcotest.(check (pair int int)) "tile 0" (0, 0) (Topology.coords mesh33 0);
  Alcotest.(check (pair int int)) "tile 5" (2, 1) (Topology.coords mesh33 5);
  Alcotest.(check (pair int int)) "tile 8" (2, 2) (Topology.coords mesh33 8)

let expect_invalid f =
  Alcotest.(check bool) "Invalid_argument" true
    (try
       ignore (f ());
       false
     with Invalid_argument _ -> true)

let test_bounds_checked () =
  expect_invalid (fun () -> Topology.coords mesh33 9);
  expect_invalid (fun () -> Topology.index mesh33 ~x:3 ~y:0);
  expect_invalid (fun () -> Topology.mesh ~cols:0 ~rows:2)

let test_mesh_distance () =
  (* Manhattan distance on the mesh. *)
  Alcotest.(check int) "corner to corner" 4 (Topology.distance mesh33 0 8);
  Alcotest.(check int) "same tile" 0 (Topology.distance mesh33 4 4);
  Alcotest.(check int) "adjacent" 1 (Topology.distance mesh33 0 1)

let test_torus_distance_wraps () =
  (* On a 3x3 torus, opposite edges are one hop apart. *)
  Alcotest.(check int) "x wrap" 1 (Topology.distance torus33 0 2);
  Alcotest.(check int) "y wrap" 1 (Topology.distance torus33 0 6);
  Alcotest.(check int) "corner wrap" 2 (Topology.distance torus33 0 8)

let test_neighbours () =
  Alcotest.(check bool) "horizontally adjacent" true
    (Topology.are_neighbours mesh33 0 1);
  Alcotest.(check bool) "vertically adjacent" true
    (Topology.are_neighbours mesh33 0 3);
  Alcotest.(check bool) "diagonal not adjacent" false
    (Topology.are_neighbours mesh33 0 4);
  Alcotest.(check bool) "self not neighbour" false
    (Topology.are_neighbours mesh33 0 0);
  (* Mesh rows do not wrap; torus rows do. *)
  Alcotest.(check bool) "mesh edge no wrap" false (Topology.are_neighbours mesh33 0 2);
  Alcotest.(check bool) "torus wraps" true (Topology.are_neighbours torus33 0 2)

let test_step () =
  (* Moving +x from tile 0 reaches tile 1. *)
  Alcotest.(check int) "step +x" 1 (Topology.step mesh33 0 ~dx:1 ~dy:0);
  Alcotest.(check int) "step +y" 3 (Topology.step mesh33 0 ~dx:0 ~dy:1);
  Alcotest.(check int) "torus wrap step" 2 (Topology.step torus33 0 ~dx:(-1) ~dy:0);
  expect_invalid (fun () -> Topology.step mesh33 0 ~dx:(-1) ~dy:0);
  expect_invalid (fun () -> Topology.step mesh33 0 ~dx:1 ~dy:1)

let test_deltas_mesh () =
  let dx, dy = Topology.deltas mesh33 0 8 in
  Alcotest.(check (pair int int)) "mesh deltas" (2, 2) (dx, dy)

let test_deltas_torus_shorter_way () =
  let dx, dy = Topology.deltas torus33 0 2 in
  Alcotest.(check (pair int int)) "wraps backwards" (-1, 0) (dx, dy)

let qcheck_distance_symmetric =
  QCheck.Test.make ~name:"distance is symmetric" ~count:300
    QCheck.(pair (int_range 0 8) (int_range 0 8))
    (fun (i, j) ->
      Topology.distance mesh33 i j = Topology.distance mesh33 j i
      && Topology.distance torus33 i j = Topology.distance torus33 j i)

let qcheck_triangle_inequality =
  QCheck.Test.make ~name:"mesh distance triangle inequality" ~count:300
    QCheck.(triple (int_range 0 8) (int_range 0 8) (int_range 0 8))
    (fun (i, j, k) ->
      Topology.distance mesh33 i k
      <= Topology.distance mesh33 i j + Topology.distance mesh33 j k)

let suite =
  [
    Alcotest.test_case "dimensions" `Quick test_dimensions;
    Alcotest.test_case "coords roundtrip" `Quick test_coords_roundtrip;
    Alcotest.test_case "row-major layout" `Quick test_coords_row_major;
    Alcotest.test_case "bounds checked" `Quick test_bounds_checked;
    Alcotest.test_case "mesh distance" `Quick test_mesh_distance;
    Alcotest.test_case "torus distance wraps" `Quick test_torus_distance_wraps;
    Alcotest.test_case "neighbours" `Quick test_neighbours;
    Alcotest.test_case "step" `Quick test_step;
    Alcotest.test_case "mesh deltas" `Quick test_deltas_mesh;
    Alcotest.test_case "torus shorter way" `Quick test_deltas_torus_shorter_way;
    QCheck_alcotest.to_alcotest qcheck_distance_symmetric;
    QCheck_alcotest.to_alcotest qcheck_triangle_inequality;
  ]
