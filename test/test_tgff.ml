(* Tests for the TGFF-like random graph generator. *)

module Params = Noc_tgff.Params
module Generate = Noc_tgff.Generate
module Category = Noc_tgff.Category
module Ctg = Noc_ctg.Ctg

let platform = Noc_noc.Platform.heterogeneous_mesh ~seed:42 ~cols:4 ~rows:4 ()

let generate ?(params = Params.default) seed = Generate.generate ~params ~platform ~seed

let test_task_count () =
  let g = generate 0 in
  Alcotest.(check int) "exact task count" Params.default.Params.n_tasks (Ctg.n_tasks g)

let test_edge_count_regime () =
  (* extra_in_degree 1.0 -> roughly two arcs per non-source task. *)
  let g = generate 0 in
  let n = float_of_int (Ctg.n_tasks g) and e = float_of_int (Ctg.n_edges g) in
  Alcotest.(check bool) "edges between 1.2x and 2.2x tasks" true
    (e > 1.2 *. n && e < 2.2 *. n)

let test_determinism () =
  let a = generate 5 and b = generate 5 in
  Alcotest.(check int) "same edges" (Ctg.n_edges a) (Ctg.n_edges b);
  Alcotest.(check bool) "same costs" true
    (Array.for_all2
       (fun (x : Noc_ctg.Task.t) (y : Noc_ctg.Task.t) ->
         x.exec_times = y.exec_times && x.energies = y.energies
         && x.deadline = y.deadline)
       (Ctg.tasks a) (Ctg.tasks b))

let test_seed_sensitivity () =
  let a = generate 5 and b = generate 6 in
  let differs =
    Ctg.n_edges a <> Ctg.n_edges b
    || Array.exists2
         (fun (x : Noc_ctg.Task.t) (y : Noc_ctg.Task.t) -> x.exec_times <> y.exec_times)
         (Ctg.tasks a) (Ctg.tasks b)
  in
  Alcotest.(check bool) "different seeds differ" true differs

let test_deadlines_on_sinks () =
  let g = generate 1 in
  List.iter
    (fun sink ->
      Alcotest.(check bool) "every sink has a deadline" true
        (Option.is_some (Ctg.task g sink).Noc_ctg.Task.deadline))
    (Ctg.sinks g);
  (* Non-sinks carry no deadline in the generated suites. *)
  let sink_set = Ctg.sinks g in
  Alcotest.(check (list int)) "deadline tasks are exactly the sinks" sink_set
    (Ctg.deadline_tasks g)

let test_deadline_value () =
  (* Deadline >= tightness * fastest path to the sink. *)
  let params = { Params.default with Params.deadline_tightness = 1.5 } in
  let g = generate ~params 2 in
  let n = Ctg.n_tasks g in
  let min_path =
    Noc_util.Topo_sort.longest_path_lengths ~n
      ~succ:(fun v -> Ctg.succs g v)
      ~weight:(fun v -> Noc_util.Stats.min_value (Ctg.task g v).Noc_ctg.Task.exec_times)
  in
  List.iter
    (fun sink ->
      match (Ctg.task g sink).Noc_ctg.Task.deadline with
      | None -> Alcotest.fail "sink without deadline"
      | Some d ->
        Alcotest.(check bool) "d >= tightness * min path" true
          (d >= (1.5 *. min_path.(sink)) -. 1e-6))
    (Ctg.sinks g)

let test_costs_positive_and_correlated () =
  let g = generate 3 in
  Array.iter
    (fun (t : Noc_ctg.Task.t) ->
      Array.iter (fun r -> Alcotest.(check bool) "time > 0" true (r > 0.)) t.exec_times;
      Array.iter (fun e -> Alcotest.(check bool) "energy >= 0" true (e >= 0.)) t.energies)
    (Ctg.tasks g)

let test_volumes_in_range () =
  let vmin, vmax = Params.default.Params.volume_range in
  let g = generate 4 in
  Array.iter
    (fun (e : Noc_ctg.Edge.t) ->
      Alcotest.(check bool) "volume in range" true (e.volume >= vmin && e.volume <= vmax))
    (Ctg.edges g)

let test_params_validation () =
  let bad = { Params.default with Params.n_tasks = 0 } in
  Alcotest.(check bool) "invalid params rejected" true
    (Result.is_error (Params.validate bad));
  let bad2 = { Params.default with Params.min_layer_width = 5; max_layer_width = 2 } in
  Alcotest.(check bool) "bad widths rejected" true (Result.is_error (Params.validate bad2));
  Alcotest.(check bool) "default validates" true
    (Result.is_ok (Params.validate Params.default))

let test_category_presets () =
  let p1 = Category.params Category.Category_i in
  let p2 = Category.params Category.Category_ii in
  Alcotest.(check int) "paper size" 500 p1.Params.n_tasks;
  Alcotest.(check bool) "category II tighter" true
    (p2.Params.deadline_tightness < p1.Params.deadline_tightness)

let test_category_benchmark_deterministic () =
  let a = Category.benchmark Category.Category_i ~index:0 in
  let b = Category.benchmark Category.Category_i ~index:0 in
  Alcotest.(check int) "same graph" (Ctg.n_edges a) (Ctg.n_edges b);
  let c = Category.benchmark Category.Category_ii ~index:0 in
  Alcotest.(check bool) "categories differ" true
    ((Ctg.task a 0).Noc_ctg.Task.exec_times <> (Ctg.task c 0).Noc_ctg.Task.exec_times
    || Ctg.n_edges a <> Ctg.n_edges c)

let test_scaled_params () =
  let scaled = Category.scaled_params Category.Category_i ~scale:0.1 in
  Alcotest.(check int) "scaled size" 50 scaled.Params.n_tasks

let qcheck_generated_graphs_valid =
  QCheck.Test.make ~name:"generated graphs are valid DAGs" ~count:50
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let params = { Params.default with Params.n_tasks = 30 } in
      let g = Generate.generate ~params ~platform ~seed in
      (* Ctg.make validates acyclicity; re-make from parts must succeed. *)
      Result.is_ok (Ctg.make ~tasks:(Ctg.tasks g) ~edges:(Ctg.edges g))
      && Ctg.n_tasks g = 30)

let qcheck_single_task_graph =
  QCheck.Test.make ~name:"degenerate sizes work" ~count:20
    QCheck.(int_range 1 4)
    (fun n_tasks ->
      let params = { Params.default with Params.n_tasks } in
      let g = Generate.generate ~params ~platform ~seed:0 in
      Ctg.n_tasks g = n_tasks)

let suite =
  [
    Alcotest.test_case "task count" `Quick test_task_count;
    Alcotest.test_case "edge count regime" `Quick test_edge_count_regime;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "deadlines on sinks" `Quick test_deadlines_on_sinks;
    Alcotest.test_case "deadline values" `Quick test_deadline_value;
    Alcotest.test_case "costs positive" `Quick test_costs_positive_and_correlated;
    Alcotest.test_case "volumes in range" `Quick test_volumes_in_range;
    Alcotest.test_case "params validation" `Quick test_params_validation;
    Alcotest.test_case "category presets" `Quick test_category_presets;
    Alcotest.test_case "category deterministic" `Quick test_category_benchmark_deterministic;
    Alcotest.test_case "scaled params" `Quick test_scaled_params;
    QCheck_alcotest.to_alcotest qcheck_generated_graphs_valid;
    QCheck_alcotest.to_alcotest qcheck_single_task_graph;
  ]
