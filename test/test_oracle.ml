(* Validator-as-oracle regression tests.

   Every scheduler is run over a bank of random TGFF graphs; for each run
   we assert (a) structural feasibility — the independent validator finds
   no violation besides deadline misses, which the baselines are allowed
   to incur — and (b) energy and miss-count invariance against a golden
   table recorded from the reference implementation. Energy depends only
   on the task-to-PE assignment (Eq. 3), so any silent behaviour change in
   the schedule-table substrate that shifts a placement decision flips a
   golden value by a whole reassignment and fails loudly here.

   Regenerate the table with:
     ORACLE_REGEN=1 dune exec test/test_main.exe -- test oracle 2>/dev/null *)

module Validate = Noc_sched.Validate
module Metrics = Noc_sched.Metrics

let platform = Noc_noc.Platform.heterogeneous_mesh ~seed:3 ~cols:3 ~rows:3 ()

let params =
  { Noc_tgff.Params.default with n_tasks = 24; max_layer_width = 5 }

let n_seeds = 50

let schedulers =
  [
    ("EAS", fun ctg -> (Noc_eas.Eas.schedule platform ctg).Noc_eas.Eas.schedule);
    ("EDF", fun ctg -> (Noc_edf.Edf.schedule platform ctg).Noc_edf.Edf.schedule);
    ("DLS", fun ctg ->
      (Noc_baselines.Dls.schedule platform ctg).Noc_baselines.Dls.schedule);
    ("energy-greedy", fun ctg ->
      (Noc_baselines.Energy_greedy.schedule platform ctg)
        .Noc_baselines.Energy_greedy.schedule);
  ]

let ctg_of_seed seed = Noc_tgff.Generate.generate ~params ~platform ~seed

let run_one scheduler ctg =
  let schedule = scheduler ctg in
  let metrics = Metrics.compute platform ctg schedule in
  let structural =
    List.filter
      (function Validate.Deadline_miss _ -> false | _ -> true)
      (Validate.check platform ctg schedule)
  in
  (metrics.Metrics.total_energy, Metrics.miss_count metrics, structural)

(* One line per seed: seed then (energy, misses) per scheduler in the
   order of [schedulers]. Recorded from the seed list-based Timeline and
   required to survive every substrate swap since. *)
let golden_table = {golden|
0 4859.0408 0 7704.4429 0 7302.8296 0 2834.8414 6
1 4396.6967 0 5943.8451 0 6214.5934 0 1767.6972 6
2 4393.9249 0 5984.3301 0 6117.8500 0 2256.0292 7
3 4749.0564 0 5835.0638 0 6110.9848 0 3107.9713 5
4 7178.8580 0 9636.5582 0 9557.0821 0 4396.0994 6
5 4878.7381 0 6730.3408 0 6848.6159 0 3025.6941 5
6 3498.6835 0 5842.0516 0 5713.8070 0 2522.1699 7
7 7578.9670 0 11107.2635 0 10354.7569 0 3508.6372 5
8 3840.6774 0 5866.2560 0 5383.6242 0 2759.3345 8
9 6845.8970 0 9250.5087 0 9265.5241 0 3007.7259 5
10 3695.6846 0 5225.6444 0 6046.8550 0 2681.4234 5
11 5953.7306 0 8139.3268 0 7633.3911 0 4566.0650 6
12 4439.9349 0 5657.6992 0 6098.8325 0 3049.1614 6
13 6819.6015 0 10359.6549 0 9642.3268 0 3216.3208 4
14 4345.1504 0 5620.7564 0 5983.5588 0 2465.2428 7
15 5762.9551 0 6959.3202 0 6738.2666 0 2793.0089 5
16 7430.3480 0 10353.5188 0 11212.1261 0 4205.5213 6
17 5661.2926 0 7375.0677 0 7480.0178 0 2655.7140 5
18 6384.7599 0 9044.5022 0 8534.2067 0 2741.2562 5
19 6390.7906 0 7251.6533 0 7629.8820 0 2779.4812 8
20 5810.2551 0 8367.8139 0 8205.1525 0 3666.6890 6
21 4740.0622 0 8574.2338 0 8642.4530 0 2805.7968 6
22 5764.6172 0 7728.0957 0 7455.4109 0 2085.1921 7
23 5181.8773 0 7697.0906 0 7278.2862 0 3119.2343 4
24 4502.4027 0 6646.4937 0 6818.4300 0 2053.3015 6
25 5437.9496 0 9041.2888 0 8480.6479 0 3777.4005 4
26 5536.3227 0 8297.6115 0 7446.2647 0 3528.1273 5
27 4705.5555 0 5980.8815 0 5996.5879 1 2423.7090 6
28 6043.1952 0 8153.5052 0 8015.0091 0 3429.9646 7
29 4827.1665 0 5386.0743 0 6425.7493 0 2746.4160 6
30 5770.2888 0 7833.8738 0 8387.8886 0 3646.8191 6
31 5696.5804 0 7547.2954 0 7267.9430 0 3318.4802 7
32 5302.6647 0 7503.7053 0 7357.0267 0 3044.1693 7
33 4550.1256 0 7456.7978 0 7105.5168 0 2743.7166 6
34 6469.7225 0 9299.7925 0 9720.1595 0 3891.4786 4
35 4110.2572 0 5542.4828 0 5903.0267 1 2711.6607 6
36 5522.3338 1 7869.6263 0 9297.9572 0 3419.4693 7
37 5406.4968 0 7042.9135 0 6884.5403 0 3440.1195 6
38 4182.8216 0 6169.5906 0 5957.6328 0 2522.2290 7
39 6198.0738 0 8072.2725 0 8366.3267 0 3926.7934 6
40 5429.5073 0 8286.6308 0 8305.7011 0 3054.2419 5
41 5536.1536 0 8004.5378 0 8149.6527 0 3465.3742 5
42 5725.1093 0 8576.4550 0 8685.8887 0 2958.6841 7
43 6556.9741 0 8764.1723 0 8551.6808 0 3242.4056 5
44 5144.2146 0 6390.7181 0 7486.5014 0 2805.0410 6
45 4734.8887 0 5678.6339 0 5678.9229 0 2416.4368 6
46 5080.7485 0 6319.5520 0 6852.6896 0 2958.4449 7
47 4839.5913 0 5740.1630 0 6192.5445 0 3479.4149 6
48 7877.9381 0 9885.0824 0 9279.5025 0 4353.0894 8
49 7198.2810 0 8311.6651 0 8369.4667 0 4315.5788 5
|golden}

let parse_golden () =
  golden_table |> String.trim |> String.split_on_char '\n'
  |> List.map (fun line ->
         match
           line |> String.trim |> String.split_on_char ' '
           |> List.filter (fun s -> s <> "")
         with
         | seed :: rest ->
           let rec pairs = function
             | e :: m :: tl -> (float_of_string e, int_of_string m) :: pairs tl
             | [] -> []
             | [ _ ] -> failwith "golden table: odd field count"
           in
           (int_of_string seed, pairs rest)
         | [] -> failwith "golden table: empty line")

let regen () =
  for seed = 0 to n_seeds - 1 do
    let ctg = ctg_of_seed seed in
    let cells =
      List.concat_map
        (fun (_, sched) ->
          let energy, misses, _ = run_one sched ctg in
          [ Printf.sprintf "%.4f" energy; string_of_int misses ])
        schedulers
    in
    Printf.eprintf "%d %s\n%!" seed (String.concat " " cells)
  done

let test_structural_feasibility () =
  (* A lighter sweep than the golden one: every scheduler on a handful of
     seeds must produce schedules the independent validator accepts
     (ignoring deadline misses, which deadline-oblivious baselines may
     legitimately incur). *)
  for seed = 0 to 9 do
    let ctg = ctg_of_seed seed in
    List.iter
      (fun (name, sched) ->
        let _, _, structural = run_one sched ctg in
        Alcotest.(check int)
          (Printf.sprintf "%s seed %d: structural violations" name seed)
          0 (List.length structural))
      schedulers
  done

let test_eas_feasible_on_loose_deadlines () =
  (* Default TGFF tightness is loose enough that EAS must meet every
     deadline: full [is_feasible], not just the structural subset. *)
  for seed = 0 to 9 do
    let ctg = ctg_of_seed seed in
    let schedule = (Noc_eas.Eas.schedule platform ctg).Noc_eas.Eas.schedule in
    Alcotest.(check bool)
      (Printf.sprintf "EAS feasible on seed %d" seed)
      true
      (Validate.is_feasible platform ctg schedule)
  done

let test_golden_energies () =
  if Sys.getenv_opt "ORACLE_REGEN" <> None then regen ()
  else begin
    let golden = parse_golden () in
    Alcotest.(check int) "golden table rows" n_seeds (List.length golden);
    List.iter
      (fun (seed, expected) ->
        let ctg = ctg_of_seed seed in
        List.iter2
          (fun (name, sched) (expected_energy, expected_misses) ->
            let energy, misses, structural = run_one sched ctg in
            Alcotest.(check int)
              (Printf.sprintf "%s seed %d: structural violations" name seed)
              0 (List.length structural);
            Alcotest.(check int)
              (Printf.sprintf "%s seed %d: deadline misses" name seed)
              expected_misses misses;
            let tolerance = Float.max 2e-4 (1e-9 *. Float.abs expected_energy) in
            if Float.abs (energy -. expected_energy) > tolerance then
              Alcotest.failf "%s seed %d: energy %.4f, golden %.4f" name seed
                energy expected_energy)
          schedulers expected)
      golden
  end

let suite =
  [
    Alcotest.test_case "structural feasibility, all schedulers" `Quick
      test_structural_feasibility;
    Alcotest.test_case "EAS meets loose deadlines" `Quick
      test_eas_feasible_on_loose_deadlines;
    Alcotest.test_case "golden energy table" `Quick test_golden_energies;
  ]
