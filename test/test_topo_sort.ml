(* Tests for Noc_util.Topo_sort. *)

module Topo_sort = Noc_util.Topo_sort

let succ_of_edges edges v = List.filter_map (fun (a, b) -> if a = v then Some b else None) edges

let test_chain () =
  let succ = succ_of_edges [ (0, 1); (1, 2); (2, 3) ] in
  match Topo_sort.sort ~n:4 ~succ with
  | Ok order -> Alcotest.(check (array int)) "chain order" [| 0; 1; 2; 3 |] order
  | Error _ -> Alcotest.fail "chain must be acyclic"

let test_deterministic_frontier () =
  (* Diamond: 0 -> {1, 2} -> 3. Smallest-index-first gives 0 1 2 3. *)
  let succ = succ_of_edges [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  match Topo_sort.sort ~n:4 ~succ with
  | Ok order -> Alcotest.(check (array int)) "diamond order" [| 0; 1; 2; 3 |] order
  | Error _ -> Alcotest.fail "diamond must be acyclic"

let test_cycle_detected () =
  let succ = succ_of_edges [ (0, 1); (1, 2); (2, 0); (2, 3) ] in
  match Topo_sort.sort ~n:4 ~succ with
  | Ok _ -> Alcotest.fail "cycle must be reported"
  | Error members ->
    Alcotest.(check (list int)) "cycle members" [ 0; 1; 2; 3 ] members

let test_empty_graph () =
  match Topo_sort.sort ~n:0 ~succ:(fun _ -> []) with
  | Ok order -> Alcotest.(check int) "empty" 0 (Array.length order)
  | Error _ -> Alcotest.fail "empty graph is acyclic"

let test_is_acyclic () =
  Alcotest.(check bool) "dag" true
    (Topo_sort.is_acyclic ~n:3 ~succ:(succ_of_edges [ (0, 1); (1, 2) ]));
  Alcotest.(check bool) "self loop" false
    (Topo_sort.is_acyclic ~n:2 ~succ:(succ_of_edges [ (0, 0) ]))

let test_longest_paths () =
  (* 0 -> 1 -> 3, 0 -> 2 -> 3 with weights 1, 2, 3, 4: the longest path to
     3 goes through 2 (1 + 3 + 4 = 8). *)
  let succ = succ_of_edges [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let weight = function 0 -> 1. | 1 -> 2. | 2 -> 3. | 3 -> 4. | _ -> assert false in
  let lengths = Topo_sort.longest_path_lengths ~n:4 ~succ ~weight in
  Alcotest.(check (float 0.)) "source" 1. lengths.(0);
  Alcotest.(check (float 0.)) "via 1" 3. lengths.(1);
  Alcotest.(check (float 0.)) "via 2" 4. lengths.(2);
  Alcotest.(check (float 0.)) "sink" 8. lengths.(3)

(* Random layered DAGs: every edge must go forward in the order. *)
let random_dag_gen =
  QCheck.Gen.(
    small_int >>= fun seed ->
    int_range 2 30 >>= fun n -> return (seed, n))

let qcheck_order_respects_edges =
  QCheck.Test.make ~name:"topological order respects edges" ~count:200
    (QCheck.make random_dag_gen)
    (fun (seed, n) ->
      let rng = Noc_util.Prng.create ~seed in
      let edges = ref [] in
      for v = 1 to n - 1 do
        let n_preds = Noc_util.Prng.int rng ~bound:(Stdlib.min v 3) + 1 in
        for _ = 1 to n_preds do
          let p = Noc_util.Prng.int rng ~bound:v in
          edges := (p, v) :: !edges
        done
      done;
      let succ = succ_of_edges !edges in
      match Topo_sort.sort ~n ~succ with
      | Error _ -> false
      | Ok order ->
        let position = Array.make n 0 in
        Array.iteri (fun i v -> position.(v) <- i) order;
        List.for_all (fun (a, b) -> position.(a) < position.(b)) !edges)

let suite =
  [
    Alcotest.test_case "chain" `Quick test_chain;
    Alcotest.test_case "deterministic frontier" `Quick test_deterministic_frontier;
    Alcotest.test_case "cycle detected" `Quick test_cycle_detected;
    Alcotest.test_case "empty graph" `Quick test_empty_graph;
    Alcotest.test_case "is_acyclic" `Quick test_is_acyclic;
    Alcotest.test_case "longest paths" `Quick test_longest_paths;
    QCheck_alcotest.to_alcotest qcheck_order_respects_edges;
  ]
