(* Smoke tests for the ASCII Gantt renderer. *)

module Gantt = Noc_sched.Gantt
module Schedule = Noc_sched.Schedule

let platform = Noc_noc.Platform.homogeneous_mesh ~cols:2 ~rows:2

let ctg =
  let b = Noc_ctg.Builder.create ~n_pes:4 in
  let t0 = Noc_ctg.Builder.add_uniform_task b ~time:10. ~energy:1. () in
  let t1 = Noc_ctg.Builder.add_uniform_task b ~time:10. ~energy:1. () in
  Noc_ctg.Builder.connect b ~src:t0 ~dst:t1 ~volume:3200.;
  Noc_ctg.Builder.build_exn b

let schedule =
  Schedule.make
    ~placements:
      [|
        { Schedule.task = 0; pe = 0; start = 0.; finish = 10. };
        { Schedule.task = 1; pe = 1; start = 11.; finish = 21. };
      |]
    ~transactions:
      [|
        {
          Schedule.edge = 0;
          src_pe = 0;
          dst_pe = 1;
          route = [ 0; 1 ];
          start = 10.;
          finish = 11.;
        };
      |]

let lines_of s = String.split_on_char '\n' s |> List.filter (fun l -> l <> "")

let test_renders_all_pes () =
  let out = Gantt.render ~width:40 platform ctg schedule in
  let pe_rows =
    lines_of out |> List.filter (fun l -> String.length l > 2 && String.sub l 0 2 = "pe")
  in
  Alcotest.(check int) "one row per PE" 4 (List.length pe_rows)

let test_link_rows_present () =
  let out = Gantt.render ~width:40 platform ctg schedule in
  let has_link =
    List.exists
      (fun l -> String.length l > 5 && String.contains l '>')
      (lines_of out)
  in
  Alcotest.(check bool) "link row shown" true has_link

let test_links_can_be_hidden () =
  let out = Gantt.render ~width:40 ~show_links:false platform ctg schedule in
  Alcotest.(check bool) "no link rows" false
    (List.exists (fun l -> String.contains l '#') (lines_of out))

let test_row_width_respected () =
  let out = Gantt.render ~width:32 platform ctg schedule in
  List.iter
    (fun l ->
      if String.length l > 2 && String.sub l 0 2 = "pe" then
        (* "pe NN |" ^ 32 cells ^ "|" *)
        Alcotest.(check int) "row width" (6 + 1 + 32 + 1) (String.length l))
    (lines_of out)

let test_busy_cells_marked () =
  let out = Gantt.render ~width:40 platform ctg schedule in
  Alcotest.(check bool) "task symbols present" true
    (String.contains out 'a' && String.contains out 'b')

let test_empty_schedule () =
  let b = Noc_ctg.Builder.create ~n_pes:4 in
  ignore (Noc_ctg.Builder.add_uniform_task b ~time:1. ~energy:1. ());
  let g = Noc_ctg.Builder.build_exn b in
  let s =
    Schedule.make
      ~placements:[| { Schedule.task = 0; pe = 0; start = 0.; finish = 1. } |]
      ~transactions:[||]
  in
  let out = Gantt.render platform g s in
  Alcotest.(check bool) "renders something" true (String.length out > 0)

let suite =
  [
    Alcotest.test_case "renders all PEs" `Quick test_renders_all_pes;
    Alcotest.test_case "link rows present" `Quick test_link_rows_present;
    Alcotest.test_case "links can be hidden" `Quick test_links_can_be_hidden;
    Alcotest.test_case "row width respected" `Quick test_row_width_respected;
    Alcotest.test_case "busy cells marked" `Quick test_busy_cells_marked;
    Alcotest.test_case "degenerate schedule" `Quick test_empty_schedule;
  ]
