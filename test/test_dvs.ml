(* Tests for the DVS slack-reclamation extension. *)

module Dvs = Noc_eas.Dvs
module Schedule = Noc_sched.Schedule
module Builder = Noc_ctg.Builder

let platform = Noc_tgff.Category.platform

let random_case seed =
  let params = { Noc_tgff.Params.default with n_tasks = 50 } in
  let ctg = Noc_tgff.Generate.generate ~params ~platform ~seed in
  let schedule = (Noc_eas.Eas.schedule platform ctg).Noc_eas.Eas.schedule in
  (ctg, schedule)

let test_factors_in_range () =
  let ctg, schedule = random_case 0 in
  let report = Dvs.plan ~max_stretch:2.0 ctg schedule in
  List.iter
    (fun (s : Dvs.stretch) ->
      Alcotest.(check bool) "1 <= factor <= max" true
        (s.factor >= 1. && s.factor <= 2.0 +. 1e-9))
    report.Dvs.stretches

let test_never_increases_energy () =
  let ctg, schedule = random_case 1 in
  let report = Dvs.plan ctg schedule in
  Alcotest.(check bool) "saves or keeps" true
    (report.Dvs.computation_energy_after <= report.Dvs.computation_energy_before);
  List.iter
    (fun (s : Dvs.stretch) ->
      Alcotest.(check bool) "per-task monotone" true (s.energy_after <= s.energy_before))
    report.Dvs.stretches;
  Alcotest.(check bool) "saving in [0,1)" true
    (Dvs.saving report >= 0. && Dvs.saving report < 1.)

let test_respects_constraints () =
  let ctg, schedule = random_case 2 in
  let report = Dvs.plan ctg schedule in
  List.iter
    (fun (s : Dvs.stretch) ->
      let p = Schedule.placement schedule s.task in
      (* Never finishes before the original schedule says it started. *)
      Alcotest.(check bool) "after own start" true (s.new_finish >= p.Schedule.finish -. 1e-9);
      (* Outgoing transactions still depart after the stretched finish. *)
      List.iter
        (fun (e : Noc_ctg.Edge.t) ->
          let tr = Schedule.transaction schedule e.id in
          Alcotest.(check bool) "departures respected" true
            (tr.Schedule.start +. 1e-6 >= s.new_finish))
        (Noc_ctg.Ctg.out_edges ctg s.task);
      (* Deadlines still met. *)
      match (Noc_ctg.Ctg.task ctg s.task).Noc_ctg.Task.deadline with
      | None -> ()
      | Some d -> Alcotest.(check bool) "deadline kept" true (s.new_finish <= d +. 1e-6))
    report.Dvs.stretches;
  (* Tasks on one PE never overlap after stretching. *)
  for pe = 0 to Noc_noc.Platform.n_pes platform - 1 do
    let stretched_windows =
      Schedule.tasks_on_pe schedule ~pe
      |> List.map (fun (p : Schedule.placement) ->
             let s = List.nth report.Dvs.stretches p.task in
             (p.start, s.Dvs.new_finish))
    in
    let rec disjoint = function
      | (_, f1) :: (((s2, _) :: _) as rest) -> f1 <= s2 +. 1e-6 && disjoint rest
      | [ _ ] | [] -> true
    in
    Alcotest.(check bool) "PE order kept" true (disjoint stretched_windows)
  done

let test_known_slack_fully_reclaimed () =
  (* One task, deadline twice its execution time: stretch factor 2 and a
     4x dynamic energy reduction. *)
  let b = Builder.create ~n_pes:2 in
  ignore (Builder.add_uniform_task b ~time:100. ~energy:40. ~deadline:200. ());
  let ctg = Builder.build_exn b in
  let p2 = Noc_noc.Platform.homogeneous_mesh ~cols:2 ~rows:1 in
  let schedule = (Noc_eas.Eas.schedule p2 ctg).Noc_eas.Eas.schedule in
  let report = Dvs.plan ctg schedule in
  (match report.Dvs.stretches with
  | [ s ] ->
    Alcotest.(check (float 1e-9)) "factor 2" 2. s.Dvs.factor;
    Alcotest.(check (float 1e-9)) "quarter energy" 10. s.Dvs.energy_after
  | _ -> Alcotest.fail "one task expected");
  Alcotest.(check (float 1e-9)) "75% saving" 0.75 (Dvs.saving report)

let test_no_slack_no_stretch () =
  (* Deadline equal to the execution time: no room, factor 1. *)
  let b = Builder.create ~n_pes:2 in
  ignore (Builder.add_uniform_task b ~time:100. ~energy:40. ~deadline:100. ());
  let ctg = Builder.build_exn b in
  let p2 = Noc_noc.Platform.homogeneous_mesh ~cols:2 ~rows:1 in
  let schedule = (Noc_eas.Eas.schedule p2 ctg).Noc_eas.Eas.schedule in
  let report = Dvs.plan ctg schedule in
  List.iter
    (fun (s : Dvs.stretch) -> Alcotest.(check (float 0.)) "no stretch" 1. s.Dvs.factor)
    report.Dvs.stretches

let test_max_stretch_validated () =
  let ctg, schedule = random_case 3 in
  Alcotest.(check bool) "max_stretch < 1 rejected" true
    (try
       ignore (Dvs.plan ~max_stretch:0.5 ctg schedule);
       false
     with Invalid_argument _ -> true)

let test_saves_on_msb () =
  let platform = Noc_msb.Platforms.av_3x3 in
  let ctg =
    Noc_msb.Graphs.integrated ~platform ~clip:Noc_msb.Profile.Foreman ()
  in
  let schedule = (Noc_eas.Eas.schedule platform ctg).Noc_eas.Eas.schedule in
  let report = Dvs.plan ctg schedule in
  Alcotest.(check bool) "positive saving on slack-rich MSB" true (Dvs.saving report > 0.)

let suite =
  [
    Alcotest.test_case "factors in range" `Quick test_factors_in_range;
    Alcotest.test_case "never increases energy" `Quick test_never_increases_energy;
    Alcotest.test_case "respects constraints" `Quick test_respects_constraints;
    Alcotest.test_case "known slack fully reclaimed" `Quick test_known_slack_fully_reclaimed;
    Alcotest.test_case "no slack, no stretch" `Quick test_no_slack_no_stretch;
    Alcotest.test_case "max_stretch validated" `Quick test_max_stretch_validated;
    Alcotest.test_case "saves on MSB" `Slow test_saves_on_msb;
  ]
