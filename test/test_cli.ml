(* End-to-end smoke tests of the nocsched command-line tool. The binary
   is declared as a test dependency in dune, so it is built and
   reachable relative to the test's working directory. *)

let binary = Filename.concat ".." (Filename.concat "bin" "nocsched.exe")

let run_capture args =
  let out = Filename.temp_file "nocsched_cli" ".out" in
  let command = Printf.sprintf "%s %s > %s 2>&1" binary args (Filename.quote out) in
  let code = Sys.command command in
  let text = In_channel.with_open_text out In_channel.input_all in
  Sys.remove out;
  (code, text)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  scan 0

let test_generate () =
  let code, text = run_capture "generate --tasks 12 --seed 3" in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "summarises the graph" true (contains text "12 tasks")

let test_generate_dot () =
  let code, text = run_capture "generate --tasks 8 --dot" in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "graphviz output" true (contains text "digraph")

let test_schedule_tgff () =
  let code, text = run_capture "schedule --benchmark tgff:1 --tasks 20 --algo eas" in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "prints energy" true (contains text "energy");
  Alcotest.(check bool) "no warnings" false (contains text "WARNING")

let test_schedule_msb_gantt () =
  let code, text = run_capture "schedule --benchmark decoder:akiyo --algo edf --gantt" in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "gantt rows" true (contains text "pe  0 |")

let test_schedule_roundtrip_files () =
  let ctg_file = Filename.temp_file "cli" ".ctg" in
  let sched_file = Filename.temp_file "cli" ".sched" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove ctg_file;
      Sys.remove sched_file)
    (fun () ->
      let code, _ =
        run_capture (Printf.sprintf "generate --tasks 15 --seed 4 -o %s" ctg_file)
      in
      Alcotest.(check int) "generate exit 0" 0 code;
      let code, text =
        run_capture
          (Printf.sprintf "schedule --input %s --save-schedule %s --utilization"
             ctg_file sched_file)
      in
      Alcotest.(check int) "schedule exit 0" 0 code;
      Alcotest.(check bool) "utilization printed" true (contains text "pe 0:");
      Alcotest.(check bool) "schedule file written" true (Sys.file_exists sched_file))

let test_simulate () =
  let code, text = run_capture "simulate --benchmark tgff:2 --tasks 20" in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "planned and realised" true
    (contains text "planned" && contains text "realised")

let test_experiment_unknown () =
  let code, text = run_capture "experiment nonsense" in
  Alcotest.(check bool) "non-zero exit" true (code <> 0);
  Alcotest.(check bool) "lists known campaigns" true
    (contains text "known campaigns" && contains text "mapping")

let test_experiment_only () =
  let code, text = run_capture "experiment --only split" in
  Alcotest.(check int) "--only split exit 0" 0 code;
  Alcotest.(check bool) "ran the split campaign" true
    (contains text "Energy breakdown");
  let code, text = run_capture "experiment --only split --only fig7" in
  Alcotest.(check int) "repeated --only exit 0" 0 code;
  Alcotest.(check bool) "ran both campaigns" true
    (contains text "Energy breakdown" && contains text "trade-off");
  let code, text = run_capture "experiment --only bogus" in
  Alcotest.(check int) "--only bogus exit 2" 2 code;
  Alcotest.(check bool) "unknown --only lists known campaigns" true
    (contains text "known campaigns");
  let code, _ = run_capture "experiment split --only fig7" in
  Alcotest.(check int) "positional plus --only exit 2" 2 code

let test_map_cmd () =
  let code, text =
    run_capture "map --benchmark tgff:1 --tasks 30 --tightness 8 --iters 2000"
  in
  Alcotest.(check int) "map exit 0" 0 code;
  Alcotest.(check bool) "prints the candidate table" true
    (contains text "identity");
  Alcotest.(check bool) "prints the winner metrics" true
    (contains text "winner" && contains text "energy")

let test_schedule_map_search () =
  let code, text =
    run_capture "schedule --benchmark tgff:1 --tasks 30 --tightness 8 --map-search"
  in
  Alcotest.(check int) "schedule --map-search exit 0" 0 code;
  Alcotest.(check bool) "prints energy" true (contains text "energy");
  let code, _ = run_capture "schedule --algo edf --map-search" in
  Alcotest.(check int) "EDF rejects --map-search" 2 code

let test_bad_benchmark () =
  let code, _ = run_capture "schedule --benchmark bogus" in
  Alcotest.(check bool) "non-zero exit" true (code <> 0)

(* Like run_capture, but the argument string is a full shell pipeline
   with a %s hole for the binary, and stdout/stderr come back
   separately. *)
let run_shell fmt =
  Printf.ksprintf
    (fun pipeline ->
      let out = Filename.temp_file "nocsched_cli" ".out" in
      let err = Filename.temp_file "nocsched_cli" ".err" in
      let command =
        Printf.sprintf "%s > %s 2> %s" pipeline (Filename.quote out)
          (Filename.quote err)
      in
      let code = Sys.command command in
      let read f = In_channel.with_open_text f In_channel.input_all in
      let stdout = read out and stderr = read err in
      Sys.remove out;
      Sys.remove err;
      (code, stdout, stderr))
    fmt

let test_stdin_dash () =
  let ctg_file = Filename.temp_file "cli_stdin" ".ctg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove ctg_file)
    (fun () ->
      let code, _ =
        run_capture (Printf.sprintf "generate --tasks 12 --seed 5 -o %s" ctg_file)
      in
      Alcotest.(check int) "generate exit 0" 0 code;
      let code, stdout, _ =
        run_shell "cat %s | %s schedule -" (Filename.quote ctg_file) binary
      in
      Alcotest.(check int) "schedule - exit 0" 0 code;
      Alcotest.(check bool) "schedule - ran" true (contains stdout "energy");
      (* The positional form and --input - are the same path. *)
      let code, stdout, _ =
        run_shell "cat %s | %s schedule --input -" (Filename.quote ctg_file) binary
      in
      Alcotest.(check int) "schedule --input - exit 0" 0 code;
      Alcotest.(check bool) "--input - ran" true (contains stdout "energy");
      let code, stdout, _ =
        run_shell "cat %s | %s simulate --input -" (Filename.quote ctg_file) binary
      in
      Alcotest.(check int) "simulate --input - exit 0" 0 code;
      Alcotest.(check bool) "simulate - ran" true (contains stdout "planned");
      let code, stdout, _ =
        run_shell "cat %s | %s analyze --ctg -" (Filename.quote ctg_file) binary
      in
      Alcotest.(check int) "analyze --ctg - exit 0" 0 code;
      Alcotest.(check bool) "analyze - ran" true (contains stdout "analyzed");
      (* generate -o - streams the graph, so the two chain directly. *)
      let code, stdout, _ =
        run_shell "%s generate --tasks 10 --seed 6 -o - | %s schedule -" binary
          binary
      in
      Alcotest.(check int) "generate | schedule pipe exit 0" 0 code;
      Alcotest.(check bool) "pipe ran" true (contains stdout "energy"))

(* Usage errors are uniform across the CLI: exit code 2, the complaint
   and usage on stderr, stdout untouched. *)
let test_usage_errors_exit_2 () =
  let cases =
    [
      ("unknown subcommand", "frobnicate", "unknown command");
      ("unknown flag", "schedule --no-such-flag", "unknown option");
      ("malformed mesh", "generate --mesh 4x", "--mesh");
      ("malformed algo", "schedule --algo bogus --benchmark tgff:1", "--algo");
      ("stray positional", "simulate stray-arg", "too many arguments");
      (* The parse error names the offending token, not just the flag. *)
      ( "malformed vf-levels",
        "schedule --benchmark tgff:1 --dvfs --vf-levels 1,x,0.5",
        "level \"x\" is not a number" );
    ]
  in
  List.iter
    (fun (label, args, needle) ->
      let code, stdout, stderr = run_shell "%s %s" binary args in
      Alcotest.(check int) (label ^ ": exit 2") 2 code;
      Alcotest.(check string) (label ^ ": stdout clean") "" stdout;
      Alcotest.(check bool) (label ^ ": names the problem") true
        (contains stderr needle);
      Alcotest.(check bool) (label ^ ": prints usage") true
        (contains stderr "Usage:"))
    cases

let test_routing_flag () =
  (* The adaptive relation certifies on the acceptance mesh... *)
  let code, text = run_capture "analyze --platform --mesh 8x8 --routing west-first" in
  Alcotest.(check int) "analyze exit 0" 0 code;
  Alcotest.(check bool) "names the routing function" true
    (contains text "west-first routing");
  Alcotest.(check bool) "clean" true (contains text "analysis clean");
  (* ...and the turn-legal detours survive the two-fault replay that
     sinks unrestricted BFS rerouting (the PR-3 regression, end to
     end). *)
  let code, text =
    run_capture
      "simulate --benchmark tgff:3 --tasks 40 --routing west-first --fault \
       link:5-6 --fault link:9-5 --reschedule"
  in
  Alcotest.(check int) "simulate exit 0" 0 code;
  Alcotest.(check bool) "rescheduled replay survives" true
    (contains text "rescheduled replay: 0 deadline misses, 0 lost tasks");
  let code, _, stderr = run_shell "%s analyze --platform --routing bogus" binary in
  Alcotest.(check int) "bad model exit 2" 2 code;
  Alcotest.(check bool) "names --routing" true (contains stderr "--routing")

let test_dvfs_flag () =
  (* End to end: schedule, reclaim slack, re-certify, and persist the
     scaled schedule as a version-3 file. *)
  let sched_file = Filename.temp_file "cli_dvfs" ".sched" in
  Fun.protect
    ~finally:(fun () -> Sys.remove sched_file)
    (fun () ->
      let code, text =
        run_capture
          (Printf.sprintf
             "schedule --benchmark tgff:1 --tasks 30 --dvfs --save-schedule %s"
             sched_file)
      in
      Alcotest.(check int) "schedule --dvfs exit 0" 0 code;
      Alcotest.(check bool) "reports the ladder and downclocks" true
        (contains text "dvfs: levels {1,0.8,0.6,0.5} x f_max");
      Alcotest.(check bool) "reports reclaimed energy" true
        (contains text "reclaimed");
      Alcotest.(check bool) "scaled schedule re-certified" true
        (contains text "dvfs schedule certified");
      let saved = In_channel.with_open_text sched_file In_channel.input_all in
      Alcotest.(check bool) "saved as format v3" true
        (String.starts_with ~prefix:"schedule 3\n" saved);
      Alcotest.(check bool) "dvfs annotations present" true
        (contains saved "\ndvfs ");
      (* The analyzer must read the v3 file back and certify the scaled
         windows against the implied base, not the raw cost tables. *)
      let code, text =
        run_capture
          (Printf.sprintf "analyze --benchmark tgff:1 --tasks 30 --schedule %s"
             sched_file)
      in
      Alcotest.(check int) "analyze v3 schedule exit 0" 0 code;
      Alcotest.(check bool) "analysis clean on a scaled schedule" true
        (contains text "analysis clean"));
  (* A custom ladder flows through, and --vf-levels alone is refused
     with the uniform exit-2 discipline. *)
  let code, text =
    run_capture "schedule --benchmark tgff:1 --tasks 30 --dvfs --vf-levels 1,0.7"
  in
  Alcotest.(check int) "custom ladder exit 0" 0 code;
  Alcotest.(check bool) "custom ladder reported" true
    (contains text "dvfs: levels {1,0.7} x f_max");
  let code, stdout, stderr =
    run_shell "%s schedule --benchmark tgff:1 --tasks 30 --vf-levels 1,0.7" binary
  in
  Alcotest.(check int) "--vf-levels without --dvfs: exit 2" 2 code;
  Alcotest.(check string) "stdout clean" "" stdout;
  Alcotest.(check bool) "names the dependency" true
    (contains stderr "--vf-levels only makes sense with --dvfs")

let test_help () =
  let code, text = run_capture "--help=plain" in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "lists subcommands" true
    (contains text "generate" && contains text "experiment")

let suite =
  [
    Alcotest.test_case "generate" `Quick test_generate;
    Alcotest.test_case "generate --dot" `Quick test_generate_dot;
    Alcotest.test_case "schedule tgff" `Quick test_schedule_tgff;
    Alcotest.test_case "schedule msb with gantt" `Quick test_schedule_msb_gantt;
    Alcotest.test_case "file roundtrip" `Quick test_schedule_roundtrip_files;
    Alcotest.test_case "simulate" `Quick test_simulate;
    Alcotest.test_case "unknown experiment" `Quick test_experiment_unknown;
    Alcotest.test_case "experiment --only" `Quick test_experiment_only;
    Alcotest.test_case "map" `Quick test_map_cmd;
    Alcotest.test_case "schedule --map-search" `Quick test_schedule_map_search;
    Alcotest.test_case "bad benchmark" `Quick test_bad_benchmark;
    Alcotest.test_case "stdin via -" `Quick test_stdin_dash;
    Alcotest.test_case "usage errors exit 2" `Quick test_usage_errors_exit_2;
    Alcotest.test_case "routing flag" `Quick test_routing_flag;
    Alcotest.test_case "dvfs flag" `Quick test_dvfs_flag;
    Alcotest.test_case "help" `Quick test_help;
  ]
