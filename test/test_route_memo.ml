(* Satellite property tests: the memoized route tables (Platform's
   per-platform table and Degraded's per-view table) always agree with
   fresh routing computations, across every topology family. *)

module Topology = Noc_noc.Topology
module Routing = Noc_noc.Routing
module Platform = Noc_noc.Platform
module Degraded = Noc_noc.Degraded

let platform_of topo n =
  Platform.make ~topology:topo
    ~pes:(Array.init n (fun index -> Noc_noc.Pe.of_kind ~index Noc_noc.Pe.Dsp))
    ~link_bandwidth:100. ()

(* (cols, rows) in [2, 5] x [2, 5] picks a topology instance; honeycomb
   sizes its own node count. *)
let topo_gen =
  QCheck.(triple (int_range 0 2) (int_range 2 5) (int_range 2 5))

let instantiate (kind, cols, rows) =
  match kind with
  | 0 -> ("mesh", Topology.mesh ~cols ~rows)
  | 1 -> ("torus", Topology.torus ~cols ~rows)
  | _ -> ("honeycomb", Topology.honeycomb ~cols ~rows)

let qcheck_platform_memo_matches_fresh =
  QCheck.Test.make ~name:"Platform.route memo = fresh Routing.route" ~count:30
    topo_gen
    (fun spec ->
      let _, topo = instantiate spec in
      let n = Topology.n_nodes topo in
      let platform = platform_of topo n in
      let ok = ref true in
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          (* Query twice: the second call must hit the memo table and
             still equal the fresh computation. *)
          let first = Platform.route platform ~src ~dst in
          let memo = Platform.route platform ~src ~dst in
          let fresh = Routing.route topo ~src ~dst in
          ok :=
            !ok && first = fresh && memo = fresh
            && Platform.route_links platform ~src ~dst
               = Routing.links topo ~src ~dst
            && Platform.hops platform ~src ~dst = Routing.hops topo ~src ~dst
        done
      done;
      !ok)

let qcheck_trivial_degraded_matches_platform =
  QCheck.Test.make
    ~name:"trivial Degraded view mirrors the platform's routes" ~count:30
    topo_gen
    (fun spec ->
      let _, topo = instantiate spec in
      let n = Topology.n_nodes topo in
      let platform = platform_of topo n in
      let view = Degraded.make platform ~failed_pes:[] ~failed_links:[] in
      let ok = ref (Degraded.is_trivial view) in
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          ok :=
            !ok
            && Degraded.route view ~src ~dst = Platform.route platform ~src ~dst
            && Degraded.hops view ~src ~dst = Platform.hops platform ~src ~dst
        done
      done;
      !ok)

let qcheck_degraded_memo_consistent =
  (* Fail one random directed link; every surviving pair must get a
     stable (memoized) valid walk avoiding it, with hops consistent
     with the route's length. Different views may route differently,
     but each view must be internally consistent. *)
  QCheck.Test.make ~name:"Degraded route memo is stable and valid" ~count:30
    QCheck.(pair topo_gen (int_range 0 10_000))
    (fun (spec, link_pick) ->
      let _, topo = instantiate spec in
      let n = Topology.n_nodes topo in
      let platform = platform_of topo n in
      let links = Routing.all_links topo in
      let failed = List.nth links (link_pick mod List.length links) in
      let view = Degraded.make platform ~failed_pes:[] ~failed_links:[ failed ] in
      let ok = ref true in
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          match Degraded.route_opt view ~src ~dst with
          | None -> ok := !ok && not (Degraded.reachable view ~src ~dst)
          | Some route ->
            let again = Degraded.route view ~src ~dst in
            ok :=
              !ok && route = again
              && Degraded.route_valid view route
              && List.hd route = src
              && List.nth route (List.length route - 1) = dst
              && Degraded.hops view ~src ~dst = Platform.route_hops route
              && not
                   (List.exists
                      (fun l -> Routing.link_equal l failed)
                      (Degraded.route_links view ~src ~dst))
        done
      done;
      !ok)

let qcheck_fault_keyed_views_independent =
  (* Two different fault sets over the same platform give independent
     views: each avoids its own failed link even after the other has
     filled its memo tables. *)
  QCheck.Test.make ~name:"fault-keyed views do not share memo state" ~count:20
    QCheck.(triple (int_range 2 5) (int_range 2 5) (int_range 0 10_000))
    (fun (cols, rows, pick) ->
      let topo = Topology.mesh ~cols ~rows in
      let n = Topology.n_nodes topo in
      let platform = platform_of topo n in
      let links = Routing.all_links topo in
      let la = List.nth links (pick mod List.length links) in
      let lb = List.nth links ((pick + 1) mod List.length links) in
      let va = Degraded.make platform ~failed_pes:[] ~failed_links:[ la ] in
      let vb = Degraded.make platform ~failed_pes:[] ~failed_links:[ lb ] in
      let avoids view failed =
        let ok = ref true in
        for src = 0 to n - 1 do
          for dst = 0 to n - 1 do
            match Degraded.route_opt view ~src ~dst with
            | None -> ()
            | Some _ ->
              ok :=
                !ok
                && not
                     (List.exists
                        (fun l -> Routing.link_equal l failed)
                        (Degraded.route_links view ~src ~dst))
          done
        done;
        !ok
      in
      (* Interleave: fill A's tables, then B's, then re-check A. *)
      avoids va la && avoids vb lb && avoids va la)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_platform_memo_matches_fresh;
    QCheck_alcotest.to_alcotest qcheck_trivial_degraded_matches_platform;
    QCheck_alcotest.to_alcotest qcheck_degraded_memo_consistent;
    QCheck_alcotest.to_alcotest qcheck_fault_keyed_views_independent;
  ]
