(* Satellite property tests for the flat-array EAS kernel: every dense
   matrix entry must agree {e exactly} (same float bits, not just to a
   tolerance) with the per-call platform/degraded query or CTG cost it
   precomputes, across topology families and degraded views. *)

module Topology = Noc_noc.Topology
module Routing = Noc_noc.Routing
module Platform = Noc_noc.Platform
module Degraded = Noc_noc.Degraded
module Kernel = Noc_eas.Kernel

let instantiate (kind, (cols, rows)) =
  match kind with
  | 0 -> Topology.mesh ~cols ~rows
  | 1 -> Topology.torus ~cols ~rows
  | _ -> Topology.honeycomb ~cols ~rows

(* Heterogeneous PEs so exec times/energies actually vary per column. *)
let platform_of spec = Platform.heterogeneous ~seed:7 (instantiate spec) ()

let ctg_of platform seed =
  let params =
    { Noc_tgff.Params.default with Noc_tgff.Params.n_tasks = 15 }
  in
  Noc_tgff.Generate.generate ~params ~platform ~seed

let topo_gen =
  QCheck.(pair (pair (int_range 0 2) (pair (int_range 2 4) (int_range 2 4)))
            small_nat)

(* Exact float equality, [nan]-free by construction. *)
let feq a b = a = b

let qcheck_task_matrices_match_ctg =
  QCheck.Test.make ~name:"kernel task matrices = CTG cost model" ~count:25
    topo_gen
    (fun (spec, seed) ->
      let platform = platform_of spec in
      let n_pes = Platform.n_pes platform in
      let ctg = ctg_of platform seed in
      let kernel = Kernel.build platform ctg in
      let ok = ref (Kernel.n_tasks kernel = Noc_ctg.Ctg.n_tasks ctg
                    && Kernel.n_pes kernel = n_pes) in
      for i = 0 to Noc_ctg.Ctg.n_tasks ctg - 1 do
        let task = Noc_ctg.Ctg.task ctg i in
        for k = 0 to n_pes - 1 do
          ok :=
            !ok
            && feq (Kernel.exec_time kernel ~task:i ~pe:k)
                 task.Noc_ctg.Task.exec_times.(k)
            && feq (Kernel.exec_energy kernel ~task:i ~pe:k)
                 task.Noc_ctg.Task.energies.(k)
        done;
        ok :=
          !ok
          && feq (Kernel.mean_time kernel i) (Noc_ctg.Task.mean_exec_time task)
          && feq (Kernel.weight kernel i) (Noc_ctg.Task.weight task)
          && feq (Kernel.release kernel i)
               (match task.Noc_ctg.Task.release with
               | None -> neg_infinity
               | Some r -> r)
      done;
      !ok)

let qcheck_route_matrices_match_platform =
  QCheck.Test.make ~name:"kernel route matrices = per-call platform queries"
    ~count:25 topo_gen
    (fun (spec, seed) ->
      let platform = platform_of spec in
      let n = Platform.n_pes platform in
      let ctg = ctg_of platform seed in
      let kernel = Kernel.build platform ctg in
      let bits = 100. +. (17. *. float_of_int seed) in
      let ok = ref true in
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          let route = Platform.route platform ~src ~dst in
          ok :=
            !ok
            && Kernel.reachable kernel ~src ~dst
            && Kernel.hops kernel ~src ~dst = Platform.hops platform ~src ~dst
            && feq
                 (Kernel.comm_duration kernel ~src ~dst ~bits)
                 (Platform.comm_duration platform ~src ~dst ~bits)
            && feq
                 (Kernel.comm_duration kernel ~src ~dst ~bits)
                 (Platform.route_duration platform ~route ~bits)
            && feq
                 (Kernel.comm_energy kernel ~src ~dst ~bits)
                 (Platform.comm_energy platform ~src ~dst ~bits)
            && feq
                 (Kernel.comm_energy_inf kernel ~src ~dst ~bits)
                 (Platform.comm_energy platform ~src ~dst ~bits);
          (* Same-tile transfers are free: no route, no charge. *)
          if src = dst then
            ok :=
              !ok
              && feq (Kernel.comm_duration kernel ~src ~dst ~bits) 0.
              && feq (Kernel.comm_energy kernel ~src ~dst ~bits)
                   (Platform.route_energy platform ~route:[ src ] ~bits)
        done
      done;
      !ok)

let qcheck_degraded_matrices_match_view =
  QCheck.Test.make ~name:"degraded kernel matrices = degraded view queries"
    ~count:25 topo_gen
    (fun (spec, seed) ->
      let platform = platform_of spec in
      let n = Platform.n_pes platform in
      (* Fail one PE and one directed link, picked from the seed. *)
      let links = Platform.all_links platform in
      let failed_link = List.nth links (seed mod List.length links) in
      let view =
        Degraded.make platform ~failed_pes:[ seed mod n ]
          ~failed_links:[ failed_link ]
      in
      let ctg = ctg_of platform seed in
      let kernel = Kernel.build ~degraded:view platform ctg in
      let bits = 64. in
      let ok = ref true in
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          match Degraded.route_opt view ~src ~dst with
          | None ->
            ok :=
              !ok
              && (not (Kernel.reachable kernel ~src ~dst))
              && Kernel.hops kernel ~src ~dst = -1
              && feq (Kernel.comm_energy_inf kernel ~src ~dst ~bits) infinity
              && (match Kernel.comm_duration kernel ~src ~dst ~bits with
                 | exception Invalid_argument _ -> true
                 | _ -> src = dst)
          | Some _ ->
            ok :=
              !ok
              && Kernel.reachable kernel ~src ~dst
              && Kernel.hops kernel ~src ~dst = Degraded.hops view ~src ~dst
              && feq
                   (Kernel.comm_duration kernel ~src ~dst ~bits)
                   (Degraded.comm_duration view ~src ~dst ~bits)
              && feq
                   (Kernel.comm_energy kernel ~src ~dst ~bits)
                   (Degraded.comm_energy view ~src ~dst ~bits)
        done
      done;
      !ok)

(* The composed single-probe entry, on an empty resource state, must
   reduce to ready-time + execution with no contention anywhere. *)
let test_finish_time_on_empty_state () =
  let platform = Platform.heterogeneous_mesh ~seed:42 ~cols:4 ~rows:4 () in
  let ctg = ctg_of platform 3 in
  let kernel = Kernel.build platform ctg in
  let state = Noc_sched.Resource_state.create platform in
  for k = 0 to Platform.n_pes platform - 1 do
    let f = Kernel.finish_time kernel state ~pendings:[] ~task:0 ~pe:k in
    let task = Noc_ctg.Ctg.task ctg 0 in
    let release = match task.Noc_ctg.Task.release with None -> 0. | Some r -> r in
    Alcotest.(check (float 0.))
      (Printf.sprintf "F(0,%d) on empty state" k)
      (Float.max 0. release +. task.Noc_ctg.Task.exec_times.(k))
      f
  done

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_task_matrices_match_ctg;
    QCheck_alcotest.to_alcotest qcheck_route_matrices_match_platform;
    QCheck_alcotest.to_alcotest qcheck_degraded_matrices_match_view;
    Alcotest.test_case "finish_time on an empty state" `Quick
      test_finish_time_on_empty_state;
  ]
