(* Tests for Noc_fault.Fault and Noc_fault.Fault_set: the CLI text
   syntax, the point-in-time/whole-horizon queries, the seeded sampler
   and the degraded routing views it feeds. *)

module Fault = Noc_fault.Fault
module Fault_set = Noc_fault.Fault_set
module Degraded = Noc_noc.Degraded
module Platform = Noc_noc.Platform
module Routing = Noc_noc.Routing

let platform =
  Platform.make
    ~topology:(Noc_noc.Topology.mesh ~cols:4 ~rows:4)
    ~pes:(Array.init 16 (fun index -> Noc_noc.Pe.of_kind ~index Noc_noc.Pe.Dsp))
    ~link_bandwidth:100. ()

(* {1 Text syntax} *)

let parse_exn s =
  match Fault.of_string s with
  | Ok f -> f
  | Error msg -> Alcotest.failf "of_string %S: %s" s msg

let test_of_string_round_trip () =
  List.iter
    (fun s ->
      let f = parse_exn s in
      Alcotest.(check string) ("round trip " ^ s) s (Fault.to_string f);
      (* to_string must be a canonical inverse: parsing it again yields
         an equal fault. *)
      Alcotest.(check bool) "reparse equal" true
        (Fault.compare f (parse_exn (Fault.to_string f)) = 0))
    [ "pe:5"; "link:1-2"; "pe:2@100:"; "link:3-7@10:20"; "pe:0@:50" ]

let test_of_string_errors () =
  List.iter
    (fun s ->
      match Fault.of_string s with
      | Ok _ -> Alcotest.failf "of_string %S should fail" s
      | Error _ -> ())
    [ ""; "pe:"; "pe:x"; "link:3"; "link:3-"; "cpu:1"; "pe:1@20:10"; "pe:1@5:5" ]

let test_window_semantics () =
  let f = parse_exn "link:3-7@10:20" in
  Alcotest.(check bool) "before onset" false (Fault.active_at f ~time:9.9);
  Alcotest.(check bool) "at onset" true (Fault.active_at f ~time:10.);
  Alcotest.(check bool) "inside" true (Fault.active_at f ~time:19.9);
  (* Half-open window: recovered exactly at until_time. *)
  Alcotest.(check bool) "at recovery" false (Fault.active_at f ~time:20.);
  Alcotest.(check bool) "transient" false (Fault.is_permanent f);
  let p = parse_exn "pe:5" in
  Alcotest.(check bool) "permanent" true (Fault.is_permanent p);
  Alcotest.(check bool) "permanent active late" true
    (Fault.active_at p ~time:1e9)

(* {1 Fault sets} *)

let set_of specs =
  match Fault_set.of_strings specs with
  | Ok s -> s
  | Error msg -> Alcotest.failf "of_strings: %s" msg

let test_set_queries () =
  let s = set_of [ "pe:5"; "link:1-2@50:"; "link:6-7@10:20" ] in
  Alcotest.(check int) "cardinal" 3 (Fault_set.cardinal s);
  Alcotest.(check bool) "pe 5 down" true (Fault_set.pe_failed_at s ~pe:5 ~time:0.);
  Alcotest.(check bool) "pe 4 up" false (Fault_set.pe_failed_at s ~pe:4 ~time:0.);
  let l12 = { Routing.from_node = 1; to_node = 2 } in
  Alcotest.(check bool) "link 1-2 up before onset" false
    (Fault_set.link_failed_at s ~link:l12 ~time:49.);
  Alcotest.(check bool) "link 1-2 down after onset" true
    (Fault_set.link_failed_at s ~link:l12 ~time:50.);
  (* Directed: the reverse link stays up. *)
  Alcotest.(check bool) "reverse link up" false
    (Fault_set.link_failed_at s ~link:{ Routing.from_node = 2; to_node = 1 } ~time:60.);
  let route_links = Platform.route_links platform ~src:0 ~dst:3 in
  Alcotest.(check bool) "route through 1->2 fails at 60" true
    (Fault_set.route_failed_at s ~links:route_links ~time:60.);
  Alcotest.(check bool) "route fine at 0" false
    (Fault_set.route_failed_at s ~links:route_links ~time:0.);
  Alcotest.(check (list int)) "failed pes" [ 5 ] (Fault_set.failed_pes s);
  Alcotest.(check int) "failed links" 2 (List.length (Fault_set.failed_links s));
  Alcotest.(check (list (float 1e-9))) "boundaries" [ 10.; 20.; 50. ]
    (Fault_set.boundaries s)

let test_set_canonical_key () =
  let a = set_of [ "link:1-2"; "pe:5"; "pe:3" ] in
  let b = set_of [ "pe:3"; "pe:5"; "link:1-2"; "pe:5" ] in
  Alcotest.(check string) "order and duplicates do not matter"
    (Fault_set.key a) (Fault_set.key b);
  Alcotest.(check int) "dedup" 3 (Fault_set.cardinal b);
  Alcotest.(check string) "empty key" "" (Fault_set.key Fault_set.empty)

(* {1 Sampler} *)

let test_sampler_deterministic () =
  let sample seed = Fault_set.sample ~seed ~platform ~horizon:1000. () in
  Alcotest.(check string) "same seed, same set"
    (Fault_set.key (sample 42)) (Fault_set.key (sample 42));
  (* Different seeds should differ somewhere among a handful of draws. *)
  let keys = List.init 8 (fun s -> Fault_set.key (sample s)) in
  let distinct = List.sort_uniq String.compare keys in
  Alcotest.(check bool) "seeds vary" true (List.length distinct > 1);
  let s = sample 7 in
  Alcotest.(check int) "one PE + one link" 2 (Fault_set.cardinal s);
  Alcotest.(check int) "one failed pe" 1 (List.length (Fault_set.failed_pes s));
  Alcotest.(check int) "one failed link" 1 (List.length (Fault_set.failed_links s))

let test_sampler_rejects_total_failure () =
  Alcotest.check_raises "cannot fail every PE"
    (Invalid_argument "Fault_set.sample: at least one PE must survive")
    (fun () ->
      ignore (Fault_set.sample ~seed:0 ~platform ~n_pe_faults:16 ()))

(* {1 Degraded routing} *)

let walk_ok topo route =
  let rec ok = function
    | a :: (b :: _ as rest) -> Noc_noc.Topology.are_neighbours topo a b && ok rest
    | [ _ ] | [] -> true
  in
  ok route

let test_degraded_detour () =
  (* Failing 1->2 forces the XY route 0-1-2-3 onto a detour; the detour
     is a valid walk avoiding the failed link, found for every pair. *)
  let view =
    Degraded.make platform ~failed_pes:[]
      ~failed_links:[ { Routing.from_node = 1; to_node = 2 } ]
  in
  let topo = Platform.topology platform in
  for src = 0 to 15 do
    for dst = 0 to 15 do
      let route = Degraded.route view ~src ~dst in
      Alcotest.(check bool) "valid degraded walk" true
        (Degraded.route_valid view route);
      Alcotest.(check bool) "contiguous" true (walk_ok topo route);
      Alcotest.(check int) "starts at src" src (List.hd route);
      Alcotest.(check int) "ends at dst" dst
        (List.nth route (List.length route - 1))
    done
  done;
  let detour = Degraded.route view ~src:0 ~dst:3 in
  Alcotest.(check bool) "detour avoids 1->2" false
    (List.exists
       (fun { Routing.from_node; to_node } -> from_node = 1 && to_node = 2)
       (Degraded.route_links view ~src:0 ~dst:3));
  Alcotest.(check bool) "detour longer than XY" true (List.length detour > 4)

let test_degraded_unreachable () =
  (* Cutting both incoming links of corner PE 0 (1->0 and 4->0)
     disconnects it as a destination. *)
  let view =
    Degraded.make platform ~failed_pes:[]
      ~failed_links:
        [
          { Routing.from_node = 1; to_node = 0 };
          { Routing.from_node = 4; to_node = 0 };
        ]
  in
  Alcotest.(check bool) "unreachable" false (Degraded.reachable view ~src:5 ~dst:0);
  Alcotest.(check bool) "route_opt none" true
    (Degraded.route_opt view ~src:5 ~dst:0 = None);
  Alcotest.check_raises "route raises"
    (Invalid_argument "Degraded.route: no surviving route from 5 to 0")
    (fun () -> ignore (Degraded.route view ~src:5 ~dst:0));
  (* Outgoing links are untouched, so PE 0 can still send. *)
  Alcotest.(check bool) "can still send" true (Degraded.reachable view ~src:0 ~dst:5)

let test_degraded_memoised_view () =
  let s = set_of [ "pe:5"; "link:1-2" ] in
  let a = Fault_set.degraded s platform in
  let b = Fault_set.degraded s platform in
  Alcotest.(check bool) "same view object" true (a == b);
  Alcotest.(check bool) "pe 5 dead" false (Degraded.pe_alive a 5);
  Alcotest.(check int) "15 alive" 15 (List.length (Degraded.alive_pes a));
  (* Repeated route queries hit the memo and stay equal. *)
  Alcotest.(check (list int)) "memoised route stable"
    (Degraded.route a ~src:0 ~dst:3) (Degraded.route a ~src:0 ~dst:3)

let suite =
  [
    Alcotest.test_case "of_string/to_string round trip" `Quick
      test_of_string_round_trip;
    Alcotest.test_case "of_string rejects malformed specs" `Quick
      test_of_string_errors;
    Alcotest.test_case "half-open fault windows" `Quick test_window_semantics;
    Alcotest.test_case "fault-set queries" `Quick test_set_queries;
    Alcotest.test_case "canonical keys" `Quick test_set_canonical_key;
    Alcotest.test_case "sampler is seed-deterministic" `Quick
      test_sampler_deterministic;
    Alcotest.test_case "sampler keeps a PE alive" `Quick
      test_sampler_rejects_total_failure;
    Alcotest.test_case "degraded detours are valid walks" `Quick
      test_degraded_detour;
    Alcotest.test_case "disconnection is reported" `Quick
      test_degraded_unreachable;
    Alcotest.test_case "degraded views are memoised" `Quick
      test_degraded_memoised_view;
  ]
