(* nocsched: command-line front end.

   Subcommands:
     generate    emit a random TGFF-like CTG (summary or Graphviz)
     schedule    run a scheduler on a benchmark and print metrics/Gantt
     simulate    replay a schedule on the wormhole executor
     analyze     static analysis: deadlock proofs, lints, certification
     experiment  regenerate one of the paper's tables/figures *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared argument parsing.                                            *)

let mesh_conv =
  let parse s =
    match String.split_on_char 'x' (String.lowercase_ascii s) with
    | [ c; r ] -> (
      match (int_of_string_opt c, int_of_string_opt r) with
      | Some cols, Some rows when cols > 0 && rows > 0 -> Ok (cols, rows)
      | Some _, Some _ | None, Some _ | Some _, None | None, None ->
        Error (`Msg "mesh must be COLSxROWS with positive integers"))
    | _ :: _ | [] -> Error (`Msg "mesh must look like 4x4")
  in
  let print ppf (c, r) = Format.fprintf ppf "%dx%d" c r in
  Arg.conv (parse, print)

let mesh_arg =
  Arg.(value & opt mesh_conv (4, 4) & info [ "mesh" ] ~docv:"CxR"
         ~doc:"Mesh dimensions of the target platform.")

let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED"
         ~doc:"Random seed (generation is deterministic per seed).")

let routing_conv =
  let parse s =
    match Noc_noc.Turn_model.of_string s with
    | Ok m -> Ok m
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, Noc_noc.Turn_model.pp)

let routing_arg =
  Arg.(value & opt routing_conv Noc_noc.Turn_model.Xy
       & info [ "routing" ] ~docv:"ROUTING"
           ~doc:"Routing function of the mesh platform: $(b,xy) (deterministic \
                 dimension order), $(b,west-first) or $(b,odd-even) (adaptive \
                 turn models, proved deadlock-free over their whole admissible \
                 route relation). Adaptive platforms keep fault detours inside \
                 the turn-legal set.")

let tasks_arg =
  Arg.(value & opt int 60 & info [ "tasks" ] ~docv:"N" ~doc:"Number of tasks.")

let tightness_arg =
  Arg.(value & opt float Noc_tgff.Params.default.Noc_tgff.Params.deadline_tightness
       & info [ "tightness" ] ~docv:"T"
           ~doc:"Deadline tightness relative to the fastest critical path.")

type bench_spec =
  | Tgff of int  (* seed *)
  | Msb of Noc_experiments.Msb_tables.which * Noc_msb.Profile.clip

let bench_conv =
  let parse s =
    match String.split_on_char ':' (String.lowercase_ascii s) with
    | [ "tgff"; seed ] -> (
      match int_of_string_opt seed with
      | Some seed -> Ok (Tgff seed)
      | None -> Error (`Msg "tgff seed must be an integer"))
    | [ which; clip ] -> (
      let which =
        match which with
        | "encoder" -> Some Noc_experiments.Msb_tables.Encoder
        | "decoder" -> Some Noc_experiments.Msb_tables.Decoder
        | "integrated" -> Some Noc_experiments.Msb_tables.Integrated
        | _ -> None
      in
      let clip =
        match clip with
        | "akiyo" -> Some Noc_msb.Profile.Akiyo
        | "foreman" -> Some Noc_msb.Profile.Foreman
        | "toybox" -> Some Noc_msb.Profile.Toybox
        | _ -> None
      in
      match (which, clip) with
      | Some w, Some c -> Ok (Msb (w, c))
      | None, _ | _, None ->
        Error (`Msg "benchmark must be tgff:SEED or {encoder|decoder|integrated}:CLIP"))
    | _ -> Error (`Msg "benchmark must be tgff:SEED or {encoder|decoder|integrated}:CLIP")
  in
  let print ppf = function
    | Tgff seed -> Format.fprintf ppf "tgff:%d" seed
    | Msb (w, c) ->
      Format.fprintf ppf "%s:%s"
        (match w with
        | Noc_experiments.Msb_tables.Encoder -> "encoder"
        | Noc_experiments.Msb_tables.Decoder -> "decoder"
        | Noc_experiments.Msb_tables.Integrated -> "integrated")
        (Noc_msb.Profile.clip_name c)
  in
  Arg.conv (parse, print)

let bench_arg =
  Arg.(value & opt bench_conv (Tgff 0) & info [ "benchmark" ] ~docv:"BENCH"
         ~doc:"Benchmark: tgff:SEED or {encoder|decoder|integrated}:CLIP.")

let algo_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "eas" -> Ok Noc_experiments.Runner.Eas
    | "eas-base" -> Ok Noc_experiments.Runner.Eas_base
    | "edf" -> Ok Noc_experiments.Runner.Edf
    | _ -> Error (`Msg "algorithm must be eas, eas-base or edf")
  in
  let print ppf a = Format.pp_print_string ppf (Noc_experiments.Runner.algo_name a) in
  Arg.conv (parse, print)

let algo_arg =
  Arg.(value & opt algo_conv Noc_experiments.Runner.Eas
       & info [ "algo" ] ~docv:"ALGO" ~doc:"Scheduler: eas, eas-base or edf.")

let vf_conv =
  let parse s =
    match Noc_dvfs.Vf_table.of_string s with
    | Ok t -> Ok t
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, Noc_dvfs.Vf_table.pp)

(* CTG inputs accept "-" for stdin everywhere a path is taken, so
   graphs can be piped: `nocsched generate ... | nocsched schedule -`. *)
let read_ctg_text path =
  if path = "-" then In_channel.input_all In_channel.stdin
  else
    try In_channel.with_open_bin path In_channel.input_all
    with Sys_error msg -> failwith msg

let load_ctg path =
  let label = if path = "-" then "stdin" else path in
  match Noc_ctg.Ctg_io.of_string (read_ctg_text path) with
  | Error msg -> failwith (label ^ ": " ^ msg)
  | Ok ctg -> ctg

let platform_for_ctg ~mesh ~routing ctg =
  let cols, rows = mesh in
  let platform = Noc_noc.Platform.heterogeneous_mesh ~seed:42 ~routing ~cols ~rows () in
  if Noc_ctg.Ctg.n_pes ctg <> Noc_noc.Platform.n_pes platform then
    failwith "graph PE count does not match --mesh";
  platform

let platform_and_ctg spec ~mesh ~tasks ~tightness ~routing =
  match spec with
  | Tgff seed ->
    let cols, rows = mesh in
    let platform =
      Noc_noc.Platform.heterogeneous_mesh ~seed:42 ~routing ~cols ~rows ()
    in
    let params =
      { Noc_tgff.Params.default with n_tasks = tasks; deadline_tightness = tightness }
    in
    (platform, Noc_tgff.Generate.generate ~params ~platform ~seed)
  | Msb (which, clip) ->
    if routing <> Noc_noc.Turn_model.Xy then
      failwith "--routing applies to the generated mesh platforms; the MSB \
                benchmark platforms are fixed (xy)";
    ( Noc_experiments.Msb_tables.platform_of which,
      Noc_experiments.Msb_tables.graph_of which ~clip )

(* ------------------------------------------------------------------ *)
(* Observability: leveled logging plus optional trace/decision-log/stats
   outputs, shared by schedule, simulate and experiment.               *)

type obs = { trace : string option; decisions : string option; stats : bool }

let obs_term =
  let verbose_arg =
    Arg.(value & flag
         & info [ "verbose"; "v" ]
             ~doc:"Log progress at debug level (to stderr). Overrides \
                   $(b,NOCSCHED_LOG).")
  in
  let quiet_arg =
    Arg.(value & flag
         & info [ "quiet"; "q" ]
             ~doc:"Log errors only, keeping stderr quiet and stdout \
                   machine-clean. Overrides $(b,NOCSCHED_LOG).")
  in
  let trace_arg =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Record scheduler/simulator spans and counters and write a \
                   Chrome trace-event JSON file (open in Perfetto or \
                   chrome://tracing; schema $(b,nocsched/trace/v1)).")
  in
  let decisions_arg =
    Arg.(value & opt (some string) None
         & info [ "decisions" ] ~docv:"FILE"
             ~doc:"Write a JSONL decision log: one record per EAS placement \
                   with the candidate F(i,k) values and the chosen PE \
                   (schema $(b,nocsched/decisions/v1)).")
  in
  let stats_arg =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"Print a summary table of counters and span timings after \
                   the run.")
  in
  let make verbose quiet trace decisions stats =
    Noc_obs.Log.init_from_env ();
    if quiet then Noc_obs.Log.set_level Noc_obs.Log.Error
    else if verbose then Noc_obs.Log.set_level Noc_obs.Log.Debug;
    { trace; decisions; stats }
  in
  Term.(const make $ verbose_arg $ quiet_arg $ trace_arg $ decisions_arg $ stats_arg)

let with_obs obs f =
  let want_trace = obs.trace <> None || obs.stats in
  if want_trace then begin
    Noc_obs.Counters.set_enabled true;
    Noc_obs.Trace.set_enabled true
  end;
  if obs.decisions <> None then Noc_obs.Decisions.set_enabled true;
  let result = f () in
  Option.iter
    (fun path ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (Noc_obs.Trace.export ()));
      Noc_obs.Log.infof "wrote trace %s (%d events)" path
        (Noc_obs.Trace.event_count ()))
    obs.trace;
  Option.iter
    (fun path ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (Noc_obs.Decisions.export_jsonl ()));
      Noc_obs.Log.infof "wrote decision log %s (%d records)" path
        (Noc_obs.Decisions.count ()))
    obs.decisions;
  if obs.stats then print_string (Noc_obs.Report.render ());
  result

(* ------------------------------------------------------------------ *)
(* Certifier reporting shared by schedule, simulate and analyze.       *)

let report_certification ~label diagnostics =
  match diagnostics with
  | [] -> Noc_obs.Log.infof "certifier: %s certified (independent re-verification)" label
  | diagnostics ->
    List.iter
      (fun d ->
        let text = Format.asprintf "%a" Noc_analysis.Diagnostic.pp d in
        Noc_obs.Log.warnf "certifier: %s" text)
      diagnostics;
    let errors, warnings, _ = Noc_analysis.Diagnostic.count diagnostics in
    if errors = 0 then
      Noc_obs.Log.infof "certifier: %s certified with %d warning(s)" label warnings
    else
      Noc_obs.Log.errorf "certifier: %s NOT certified (%d error(s), %d warning(s))"
        label errors warnings

(* ------------------------------------------------------------------ *)
(* generate                                                            *)

let generate_cmd =
  let dot_arg =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz instead of a summary.")
  in
  let output_arg =
    Arg.(value & opt (some string) None
         & info [ "output"; "o" ] ~docv:"FILE"
             ~doc:"Write the graph in the library's text format ($(b,-) writes \
                   stdout, suppressing the summary, so graphs pipe into \
                   $(b,schedule -)).")
  in
  let run seed tasks tightness mesh dot output =
    let cols, rows = mesh in
    let platform = Noc_noc.Platform.heterogeneous_mesh ~seed:42 ~cols ~rows () in
    let params =
      { Noc_tgff.Params.default with n_tasks = tasks; deadline_tightness = tightness }
    in
    let ctg = Noc_tgff.Generate.generate ~params ~platform ~seed in
    if output = Some "-" then print_string (Noc_ctg.Ctg_io.to_string ctg)
    else begin
      Option.iter (fun path -> Noc_ctg.Ctg_io.save ~path ctg) output;
      if dot then Format.printf "%a" Noc_ctg.Ctg.pp_dot ctg
      else begin
        Format.printf "%a@." Noc_ctg.Ctg.pp ctg;
        Format.printf "sources: %d, sinks: %d, deadline tasks: %d@."
          (List.length (Noc_ctg.Ctg.sources ctg))
          (List.length (Noc_ctg.Ctg.sinks ctg))
          (List.length (Noc_ctg.Ctg.deadline_tasks ctg));
        Format.printf "fastest critical path: %.1f, balanced load bound: %.1f@."
          (Noc_ctg.Ctg.min_critical_path ctg)
          (Noc_ctg.Ctg.min_load_bound ctg);
        Format.printf "total communication volume: %.0f bits@."
          (Noc_ctg.Ctg.total_volume ctg)
      end
    end;
    Ok ()
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a random TGFF-like task graph.")
    Term.(term_result
            (const run $ seed_arg $ tasks_arg $ tightness_arg $ mesh_arg $ dot_arg
             $ output_arg))

(* ------------------------------------------------------------------ *)
(* schedule                                                            *)

let schedule_cmd =
  let gantt_arg =
    Arg.(value & flag & info [ "gantt" ] ~doc:"Draw an ASCII Gantt chart.")
  in
  let input_arg =
    Arg.(value & opt (some string) None
         & info [ "input"; "i" ] ~docv:"FILE"
             ~doc:"Schedule a graph loaded from FILE (text format; $(b,-) reads \
                   stdin) instead of a built-in benchmark; the platform still \
                   comes from $(b,--mesh).")
  in
  let save_arg =
    Arg.(value & opt (some string) None
         & info [ "save-schedule" ] ~docv:"FILE"
             ~doc:"Write the resulting schedule in the library's text format.")
  in
  let utilization_arg =
    Arg.(value & flag
         & info [ "utilization" ] ~doc:"Print per-PE and per-link loads.")
  in
  let svg_arg =
    Arg.(value & opt (some string) None
         & info [ "svg" ] ~docv:"FILE" ~doc:"Render the schedule as an SVG Gantt chart.")
  in
  let file_arg =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"FILE"
             ~doc:"Task-graph file to schedule (text format; $(b,-) reads stdin); \
                   shorthand for $(b,--input) FILE.")
  in
  let jobs_arg =
    Arg.(value & opt (some int) None
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Fan the EAS candidate evaluations out over N domains. The \
                   schedule is bit-identical at every job count.")
  in
  let map_search_arg =
    Arg.(value & flag
         & info [ "map-search" ]
             ~doc:"Anneal a task-to-tile mapping first (default \
                   $(b,Noc_map.Search) parameters, chains fanned over \
                   $(b,--jobs)) and pin the EAS variants to the winner. EDF \
                   ignores placement, so it rejects this flag.")
  in
  let dvfs_arg =
    Arg.(value & flag
         & info [ "dvfs" ]
             ~doc:"After scheduling, run the DVFS slack-reclamation pass: \
                   downclock every task to the lowest $(b,--vf-levels) \
                   frequency that still fits its slack, re-certify the scaled \
                   schedule, and save it (format v3) when $(b,--save-schedule) \
                   is given. Start times, communication windows and deadlines \
                   are untouched.")
  in
  let vf_levels_arg =
    Arg.(value & opt (some vf_conv) None
         & info [ "vf-levels" ] ~docv:"R1,R2,..."
             ~doc:"Discrete frequency ladder as f/f_max ratios in (0, 1], \
                   e.g. $(b,1,0.8,0.6,0.5) (the default). Must include 1; \
                   needs $(b,--dvfs).")
  in
  let run spec algo mesh tasks tightness routing gantt input save utilization svg
      file jobs map_search dvfs vf_levels obs =
    with_obs obs @@ fun () ->
    (match jobs with
    | Some n when n < 1 -> failwith "--jobs must be at least 1"
    | Some _ | None -> ());
    if vf_levels <> None && not dvfs then
      failwith "--vf-levels only makes sense with --dvfs";
    let input = match file with Some _ -> file | None -> input in
    let platform, ctg =
      match input with
      | None -> platform_and_ctg spec ~mesh ~tasks ~tightness ~routing
      | Some path ->
        let ctg = load_ctg path in
        (platform_for_ctg ~mesh ~routing ctg, ctg)
    in
    let pinned =
      if not map_search then None
      else begin
        if algo = Noc_experiments.Runner.Edf then
          failwith "--map-search needs a placement-aware scheduler (eas or eas-base)";
        let r = Noc_map.Search.run ?jobs platform ctg in
        Noc_obs.Log.infof "map search: winner %s (static value %.6g)"
          (Noc_map.Search.origin_name r.Noc_map.Search.winner.origin)
          r.Noc_map.Search.winner.static_value;
        Some r.Noc_map.Search.winner.mapping
      end
    in
    (* One scheduler run serves metrics, outputs and the decision log
       alike — a second run would duplicate every --decisions record
       and double the command's wall time. *)
    let t0 = Noc_util.Clock.wall_s () in
    let schedule = Noc_experiments.Runner.schedule_of ?pinned ?jobs algo platform ctg in
    let runtime_seconds = Noc_util.Clock.wall_s () -. t0 in
    let metrics = Noc_sched.Metrics.compute platform ctg schedule in
    Format.printf "%s on %a / %a@."
      (Noc_experiments.Runner.algo_name algo)
      Noc_noc.Platform.pp platform Noc_ctg.Ctg.pp ctg;
    Format.printf "%a@." Noc_sched.Metrics.pp metrics;
    Noc_obs.Log.infof "scheduler runtime: %.3f s" runtime_seconds;
    let resource_violations =
      Noc_sched.Validate.check platform ctg schedule
      |> List.filter (function
           | Noc_sched.Validate.Deadline_miss _ -> false
           | Noc_sched.Validate.Malformed _ | Noc_sched.Validate.Task_overlap _
           | Noc_sched.Validate.Link_conflict _ | Noc_sched.Validate.Dependency _
             -> true)
      |> List.length
    in
    if resource_violations > 0 then
      Noc_obs.Log.warnf "%d resource violations" resource_violations;
    (* EAS Step 4: downclock the committed schedule into its slack. The
       scaled schedule is what --save-schedule persists (format v3); the
       printed Eq.-3 metrics above stay those of the unscaled base. *)
    let dvfs_result =
      if not dvfs then None
      else begin
        let table = Option.value ~default:Noc_dvfs.Vf_table.default vf_levels in
        let r = Noc_dvfs.Reclaim.run ~table ctg schedule in
        let before = r.Noc_dvfs.Reclaim.computation_energy_before in
        let after = r.Noc_dvfs.Reclaim.computation_energy_after in
        let saved = Noc_dvfs.Reclaim.reclaimed r in
        let comm =
          metrics.Noc_sched.Metrics.total_energy
          -. metrics.Noc_sched.Metrics.computation_energy
        in
        Format.printf "dvfs: levels {%s} x f_max, %d/%d tasks downclocked@."
          (Noc_dvfs.Vf_table.to_string table)
          r.Noc_dvfs.Reclaim.downclocked (Noc_ctg.Ctg.n_tasks ctg);
        Format.printf
          "dvfs: computation energy %.1f -> %.1f nJ (reclaimed %.1f nJ, %.1f%%), \
           total %.1f -> %.1f nJ@."
          before after saved
          (if before > 0. then 100. *. saved /. before else 0.)
          (before +. comm) (after +. comm);
        let scaled_misses =
          Noc_sched.Metrics.miss_count
            (Noc_sched.Metrics.compute platform ctg r.Noc_dvfs.Reclaim.schedule)
        in
        if scaled_misses > Noc_sched.Metrics.miss_count metrics then
          Noc_obs.Log.errorf "dvfs: reclamation introduced deadline misses (%d)"
            scaled_misses;
        Some (table, r)
      end
    in
    Option.iter
      (fun path ->
        (match dvfs_result with
        | Some (_, r) ->
          Noc_sched.Schedule_io.save ~dvfs:r.Noc_dvfs.Reclaim.annotations ~path
            r.Noc_dvfs.Reclaim.schedule
        | None -> Noc_sched.Schedule_io.save ~path schedule);
        Noc_obs.Log.infof "wrote schedule %s" path)
      save;
    Option.iter
      (fun path ->
        Noc_sched.Svg_gantt.save ~path platform ctg schedule;
        Noc_obs.Log.infof "wrote SVG Gantt chart %s" path)
      svg;
    if utilization then
      Format.printf "%a@." Noc_sched.Utilization.pp
        (Noc_sched.Utilization.compute platform schedule);
    if gantt then print_string (Noc_sched.Gantt.render platform ctg schedule);
    report_certification ~label:"schedule"
      (Noc_analysis.Certify.check
         ~claimed_energy:metrics.Noc_sched.Metrics.total_energy platform ctg
         schedule);
    (match dvfs_result with
    | None -> ()
    | Some (table, r) ->
      report_certification ~label:"dvfs schedule"
        (Noc_analysis.Certify.check_scaled
           ~ratios:(Noc_dvfs.Vf_table.ratios table)
           ~annotations:r.Noc_dvfs.Reclaim.annotations ~base:schedule platform ctg
           r.Noc_dvfs.Reclaim.schedule));
    Ok ()
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Schedule a benchmark and print its metrics.")
    Term.(term_result
            (const run $ bench_arg $ algo_arg $ mesh_arg $ tasks_arg $ tightness_arg
             $ routing_arg $ gantt_arg $ input_arg $ save_arg $ utilization_arg
             $ svg_arg $ file_arg $ jobs_arg $ map_search_arg $ dvfs_arg
             $ vf_levels_arg $ obs_term))

(* ------------------------------------------------------------------ *)
(* map                                                                 *)

let map_cmd =
  let input_arg =
    Arg.(value & opt (some string) None
         & info [ "input"; "i" ] ~docv:"FILE"
             ~doc:"Map a graph loaded from FILE (text format; $(b,-) reads \
                   stdin) instead of a built-in benchmark; the platform still \
                   comes from $(b,--mesh).")
  in
  let file_arg =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"FILE"
             ~doc:"Task-graph file to map (text format; $(b,-) reads stdin); \
                   shorthand for $(b,--input) FILE.")
  in
  let chains_arg =
    Arg.(value & opt int Noc_map.Search.default_params.Noc_map.Search.chains
         & info [ "chains" ] ~docv:"K"
             ~doc:"Independent annealing chains (chain 0 starts from the \
                   identity mapping).")
  in
  let iters_arg =
    Arg.(value & opt int Noc_map.Search.default_params.Noc_map.Search.iters
         & info [ "iters" ] ~docv:"N" ~doc:"Proposals per chain.")
  in
  let survivors_arg =
    Arg.(value & opt int Noc_map.Search.default_params.Noc_map.Search.survivors
         & info [ "survivors" ] ~docv:"K"
             ~doc:"Best static mappings given a full pinned-EAS schedule and \
                   certification pass.")
  in
  let sa_seed_arg =
    Arg.(value & opt int Noc_map.Search.default_params.Noc_map.Search.seed
         & info [ "sa-seed" ] ~docv:"SEED"
             ~doc:"Seed of the annealer's PRNG streams (independent of the \
                   graph seed).")
  in
  let balance_arg =
    Arg.(value & opt float 0.
         & info [ "balance" ] ~docv:"W"
             ~doc:"Load-balance weight in units of the mean (task, PE) \
                   execution energy; 0 optimises Eq.-3 energy alone.")
  in
  let latency_arg =
    Arg.(value & opt float 0.
         & info [ "latency" ] ~docv:"W"
             ~doc:"Static communication-latency weight (per-arc serialisation \
                   plus router hops).")
  in
  let jobs_arg =
    Arg.(value & opt (some int) None
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Fan the chains out over N domains. Results are bit-identical \
                   at every job count.")
  in
  let save_arg =
    Arg.(value & opt (some string) None
         & info [ "save-schedule" ] ~docv:"FILE"
             ~doc:"Write the winner's pinned-EAS schedule in the library's \
                   text format.")
  in
  let run spec mesh tasks tightness routing input file chains iters survivors
      sa_seed balance latency jobs save obs =
    with_obs obs @@ fun () ->
    (match jobs with
    | Some n when n < 1 -> failwith "--jobs must be at least 1"
    | Some _ | None -> ());
    if chains < 1 then failwith "--chains must be at least 1";
    if iters < 0 then failwith "--iters must be non-negative";
    if survivors < 1 then failwith "--survivors must be at least 1";
    if balance < 0. || latency < 0. then failwith "weights must be non-negative";
    let input = match file with Some _ -> file | None -> input in
    let platform, ctg =
      match input with
      | None -> platform_and_ctg spec ~mesh ~tasks ~tightness ~routing
      | Some path ->
        let ctg = load_ctg path in
        (platform_for_ctg ~mesh ~routing ctg, ctg)
    in
    (* The balance knob is given in mean-exec-energy units so the same
       setting means the same pressure on every platform; lifting the
       tables here (instead of inside [run]) converts it once. *)
    let kernel = Noc_eas.Kernel.build platform ctg in
    let tables = Noc_map.Objective.lift platform kernel ctg in
    let weights =
      {
        Noc_map.Objective.latency;
        balance = balance *. Noc_map.Objective.mean_exec_energy tables;
      }
    in
    let params =
      { Noc_map.Search.default_params with chains; iters; survivors;
        seed = sa_seed; weights }
    in
    let r = Noc_map.Search.run ?jobs ~params ~kernel platform ctg in
    Format.printf "%a@." Noc_map.Search.pp_result r;
    let winner = r.Noc_map.Search.winner in
    Format.printf "winner %s on %a / %a@."
      (Noc_map.Search.origin_name winner.origin)
      Noc_noc.Platform.pp platform Noc_ctg.Ctg.pp ctg;
    let metrics = Noc_sched.Metrics.compute platform ctg winner.schedule in
    Format.printf "%a@." Noc_sched.Metrics.pp metrics;
    Option.iter
      (fun path ->
        Noc_sched.Schedule_io.save ~path winner.schedule;
        Noc_obs.Log.infof "wrote schedule %s" path)
      save;
    report_certification ~label:"map winner"
      (Noc_analysis.Certify.check
         ~claimed_energy:metrics.Noc_sched.Metrics.total_energy platform ctg
         winner.schedule);
    Ok ()
  in
  Cmd.v
    (Cmd.info "map"
       ~doc:"Anneal a task-to-tile mapping and print the Pareto candidates.")
    Term.(term_result
            (const run $ bench_arg $ mesh_arg $ tasks_arg $ tightness_arg
             $ routing_arg $ input_arg $ file_arg $ chains_arg $ iters_arg
             $ survivors_arg $ sa_seed_arg $ balance_arg $ latency_arg $ jobs_arg
             $ save_arg $ obs_term))

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)

let simulate_cmd =
  let self_timed_arg =
    Arg.(value & flag & info [ "self-timed" ]
           ~doc:"Use work-conserving dispatch instead of the tabled times.")
  in
  let input_arg =
    Arg.(value & opt (some string) None
         & info [ "input"; "i" ] ~docv:"FILE"
             ~doc:"Simulate a graph loaded from FILE (text format; $(b,-) reads \
                   stdin) instead of a built-in benchmark; the platform still \
                   comes from $(b,--mesh).")
  in
  let fault_arg =
    Arg.(value & opt_all string []
         & info [ "fault" ] ~docv:"SPEC"
             ~doc:"Inject a fault (repeatable): $(b,pe:N) or $(b,link:A-B), optionally \
                   windowed as $(b,SPEC\\@FROM:UNTIL) with either bound omitted. \
                   $(b,pe:2\\@100:) fails PE 2 from t = 100 on; $(b,link:3-7) takes \
                   the directed link 3->7 down permanently.")
  in
  let reschedule_arg =
    Arg.(value & flag
         & info [ "reschedule" ]
             ~doc:"Also run the degraded-platform rescheduler on the injected faults \
                   and replay its schedule for comparison.")
  in
  let criticality_arg =
    Arg.(value & opt (some int) None
         & info [ "criticality" ] ~docv:"N"
             ~doc:"Rank the platform's PEs and links by the deadline misses their \
                   individual permanent failure would inflict on the schedule; print \
                   the top N.")
  in
  let report label (outcome : Noc_sim.Executor.outcome) =
    let misses = List.length outcome.Noc_sim.Executor.deadline_misses in
    let lost = List.length outcome.Noc_sim.Executor.lost_tasks in
    Format.printf "%s: %d deadline misses, %d lost tasks, blocked %.1f@." label misses
      lost outcome.Noc_sim.Executor.waiting_time
  in
  let run spec algo mesh tasks tightness routing input self_timed fault_specs
      reschedule criticality obs =
    with_obs obs @@ fun () ->
    let platform, ctg =
      match input with
      | None -> platform_and_ctg spec ~mesh ~tasks ~tightness ~routing
      | Some path ->
        let ctg = load_ctg path in
        (platform_for_ctg ~mesh ~routing ctg, ctg)
    in
    let schedule = Noc_experiments.Runner.schedule_of algo platform ctg in
    let discipline =
      if self_timed then Noc_sim.Executor.Self_timed else Noc_sim.Executor.Time_triggered
    in
    match Noc_fault.Fault_set.of_strings fault_specs with
    | Error msg -> Error (`Msg msg)
    | Ok faults ->
      let outcome = Noc_sim.Executor.run ~discipline ~faults platform ctg schedule in
      let planned = Noc_sched.Metrics.compute platform ctg schedule in
      Format.printf "planned : %a@." Noc_sched.Metrics.pp planned;
      if Noc_fault.Fault_set.is_empty faults then begin
        let realised =
          Noc_sched.Metrics.compute platform ctg outcome.Noc_sim.Executor.realised
        in
        Format.printf "realised: %a@." Noc_sched.Metrics.pp realised;
        Format.printf "time spent blocked on links: %.1f@."
          outcome.Noc_sim.Executor.waiting_time
      end
      else begin
        Format.printf "faults  : %a@." Noc_fault.Fault_set.pp faults;
        report "naive replay" outcome;
        if reschedule then begin
          let resched = Noc_eas.Fault_resched.run platform ctg ~faults schedule in
          let stats = resched.Noc_eas.Fault_resched.stats in
          Format.printf
            "rescheduled: %d tasks migrated, %d transactions rerouted%s@."
            stats.Noc_eas.Fault_resched.migrated_tasks
            stats.Noc_eas.Fault_resched.rerouted_transactions
            (if stats.Noc_eas.Fault_resched.used_full_rerun then " (full re-run)"
             else "");
          report "rescheduled replay"
            (Noc_sim.Executor.run ~discipline ~faults platform ctg
               resched.Noc_eas.Fault_resched.schedule);
          (* Detour routes legitimately diverge from the deterministic-route
             energy of Metrics, so no claimed energy is cross-checked here. *)
          report_certification ~label:"rescheduled schedule"
            (Noc_analysis.Certify.check platform ctg
               resched.Noc_eas.Fault_resched.schedule)
        end
      end;
      report_certification ~label:"planned schedule"
        (Noc_analysis.Certify.check
           ~claimed_energy:planned.Noc_sched.Metrics.total_energy platform ctg
           schedule);
      Option.iter
        (fun n ->
          Format.printf "criticality (top %d):@." n;
          Noc_eas.Fault_resched.criticality ~discipline platform ctg schedule
          |> List.filteri (fun i _ -> i < n)
          |> List.iter (fun c ->
                 Format.printf "  %a@." Noc_eas.Fault_resched.pp_criticality c))
        criticality;
      Ok ()
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Replay a schedule on the wormhole executor, optionally under injected \
             faults.")
    Term.(term_result
            (const run $ bench_arg $ algo_arg $ mesh_arg $ tasks_arg $ tightness_arg
             $ routing_arg $ input_arg $ self_timed_arg $ fault_arg $ reschedule_arg
             $ criticality_arg $ obs_term))

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)

(* A version-3 schedule file carries per-task (level, freq, energy) but
   neither the unscaled base nor the full ladder. Both are implied: the
   reclamation pass freezes starts, so the base window is the scaled one
   shrunk by the recorded ratio, and any level no task sits at can take
   an arbitrary strictly-descending value — no per-task rule ever reads
   it, only the ladder's monotonicity check does. *)
let ladder_of_annotations path
    (annotations : Noc_sched.Schedule_io.annotation array) =
  let max_level =
    Array.fold_left
      (fun m (a : Noc_sched.Schedule_io.annotation) -> max m a.level)
      0 annotations
  in
  if max_level > 4096 then
    failwith
      (Printf.sprintf "%s: dvfs level %d is not a plausible ladder index" path
         max_level);
  let ratios = Array.make (max_level + 1) Float.nan in
  ratios.(0) <- 1.;
  Array.iter
    (fun (a : Noc_sched.Schedule_io.annotation) -> ratios.(a.level) <- a.freq)
    annotations;
  let n = Array.length ratios in
  for i = 1 to n - 1 do
    if Float.is_nan ratios.(i) then begin
      let j = ref (i + 1) in
      while Float.is_nan ratios.(!j) do incr j done;
      let step =
        (ratios.(!j) -. ratios.(i - 1)) /. float_of_int (!j - (i - 1))
      in
      for k = i to !j - 1 do
        ratios.(k) <- ratios.(i - 1) +. (step *. float_of_int (k - (i - 1)))
      done
    end
  done;
  ratios

let base_of_annotations scaled
    (annotations : Noc_sched.Schedule_io.annotation array) =
  let placements =
    Array.map
      (fun (a : Noc_sched.Schedule_io.annotation) ->
        let p = Noc_sched.Schedule.placement scaled a.task in
        { p with
          Noc_sched.Schedule.finish =
            p.start +. ((p.finish -. p.start) *. a.freq)
        })
      annotations
  in
  Noc_sched.Schedule.make ~placements
    ~transactions:(Noc_sched.Schedule.transactions scaled)

let analyze_cmd =
  let ctg_arg =
    Arg.(value & opt (some string) None
         & info [ "ctg" ] ~docv:"FILE"
             ~doc:"Lint the task graph loaded from FILE (text format; $(b,-) reads \
                   stdin) instead of the $(b,--benchmark) one.")
  in
  let platform_arg =
    Arg.(value & flag
         & info [ "platform" ]
             ~doc:"Platform-layer analyses only (platform lint and routing deadlock); \
                   no task graph is loaded.")
  in
  let schedule_arg =
    Arg.(value & opt (some string) None
         & info [ "schedule" ] ~docv:"FILE"
             ~doc:"Also certify the schedule loaded from FILE against the graph and \
                   platform (independent re-verification).")
  in
  let fault_arg =
    Arg.(value & opt_all string []
         & info [ "fault" ] ~docv:"SPEC"
             ~doc:"Analyze the degraded detour route set under the injected fault \
                   (repeatable); syntax as in $(b,simulate). The channel-dependency \
                   graph then covers the BFS detours, which carry no deadlock-freedom \
                   guarantee.")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the diagnostics as a machine-readable JSON report (schema \
                   $(b,nocsched/analysis/v2); the header records the analyzed \
                   routing function and fault set, and is otherwise a strict \
                   superset of v1).")
  in
  let run spec mesh tasks tightness routing ctg_file platform_only schedule_file
      fault_specs json =
    match Noc_fault.Fault_set.of_strings fault_specs with
    | Error msg -> Error (`Msg msg)
    | Ok faults ->
      let platform, ctg =
        if platform_only then begin
          let cols, rows = mesh in
          (Noc_noc.Platform.heterogeneous_mesh ~seed:42 ~routing ~cols ~rows (), None)
        end
        else
          match ctg_file with
          | Some path ->
            let ctg = load_ctg path in
            (platform_for_ctg ~mesh ~routing ctg, Some ctg)
          | None ->
            let platform, ctg =
              platform_and_ctg spec ~mesh ~tasks ~tightness ~routing
            in
            (platform, Some ctg)
      in
      let deadlock =
        if Noc_fault.Fault_set.is_empty faults then
          Noc_analysis.Deadlock.check_platform platform
        else Noc_analysis.Deadlock.check_degraded platform faults
      in
      let platform_diags = Noc_analysis.Platform_lint.check ?ctg platform in
      let ctg_diags =
        match ctg with None -> [] | Some ctg -> Noc_analysis.Ctg_lint.check ctg
      in
      let certifier_diags, qos_report =
        match (schedule_file, ctg) with
        | None, _ -> ([], None)
        | Some _, None -> failwith "--schedule needs a task graph (omit --platform)"
        | Some path, Some ctg -> (
          match Noc_sched.Schedule_io.load_full ~path platform ctg with
          | Error msg -> failwith (path ^ ": " ^ msg)
          | Ok (schedule, dvfs) ->
            let qos =
              Noc_analysis.Qos.check platform
                (Noc_analysis.Qos.flows_of_schedule ctg schedule)
            in
            let certifier =
              match dvfs with
              | None ->
                let claimed =
                  (Noc_sched.Metrics.compute platform ctg schedule)
                    .Noc_sched.Metrics.total_energy
                in
                Noc_analysis.Certify.check ~claimed_energy:claimed platform ctg
                  schedule
              | Some annotations ->
                let ratios = ladder_of_annotations path annotations in
                let base = base_of_annotations schedule annotations in
                let claimed =
                  (Noc_sched.Metrics.compute platform ctg base)
                    .Noc_sched.Metrics.total_energy
                in
                Noc_analysis.Certify.check ~claimed_energy:claimed platform ctg
                  base
                @ Noc_analysis.Certify.check_scaled ~ratios ~annotations ~base
                    platform ctg schedule
            in
            (certifier @ qos.Noc_analysis.Qos.diagnostics, Some qos))
      in
      let diagnostics =
        Noc_analysis.Diagnostic.sort
          (deadlock @ platform_diags @ ctg_diags @ certifier_diags)
      in
      Format.printf "analyzed %a%s%s: %s@." Noc_noc.Platform.pp platform
        (match ctg with
        | None -> ""
        | Some ctg -> Format.asprintf " / %a" Noc_ctg.Ctg.pp ctg)
        (if Noc_fault.Fault_set.is_empty faults then ""
         else Format.asprintf " / faults %a" Noc_fault.Fault_set.pp faults)
        (match schedule_file with
        | None -> "deadlock + lint passes"
        | Some path -> "deadlock + lint passes + certifier on " ^ path);
      List.iter
        (fun d -> Format.printf "%a@." Noc_analysis.Diagnostic.pp d)
        diagnostics;
      Option.iter
        (fun (qos : Noc_analysis.Qos.report) ->
          let loaded =
            List.filter (fun (l : Noc_analysis.Qos.link_load) -> l.allocated > 0.)
              qos.loads
          in
          let busiest =
            List.stable_sort
              (fun a b ->
                compare (Noc_analysis.Qos.utilization b) (Noc_analysis.Qos.utilization a))
              loaded
          in
          Format.printf "qos: %d/%d links loaded%s@." (List.length loaded)
            (List.length qos.loads)
            (match busiest with
            | [] -> ""
            | top ->
              "; busiest "
              ^ String.concat ", "
                  (List.filteri (fun i _ -> i < 3) top
                  |> List.map (fun (l : Noc_analysis.Qos.link_load) ->
                         Format.asprintf "%a at %.0f%%" Noc_noc.Routing.pp_link l.link
                           (100. *. Noc_analysis.Qos.utilization l)))))
        qos_report;
      let errors, warnings, infos = Noc_analysis.Diagnostic.count diagnostics in
      if diagnostics = [] then Format.printf "analysis clean@."
      else
        Format.printf "%d error(s), %d warning(s), %d info(s)@." errors warnings infos;
      Option.iter
        (fun path ->
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
              output_string oc
                (Noc_analysis.Diagnostic.to_json
                   ~routing:(Noc_noc.Turn_model.name routing)
                   ~faults:fault_specs diagnostics)))
        json;
      (* Lint-style exit status: 0 clean, 1 warnings, 2 errors. *)
      (match Noc_analysis.Diagnostic.exit_code diagnostics with
      | 0 -> ()
      | code ->
        Format.pp_print_flush Format.std_formatter ();
        Stdlib.exit code);
      Ok ()
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Static analysis over the three model layers: routing deadlock-freedom \
             (channel-dependency graph), task-graph and platform lints, and an \
             independent schedule certifier. Exits 0 when clean, 1 on warnings, 2 \
             on errors.")
    Term.(term_result
            (const run $ bench_arg $ mesh_arg $ tasks_arg $ tightness_arg
             $ routing_arg $ ctg_arg $ platform_arg $ schedule_arg $ fault_arg
             $ json_arg))

(* ------------------------------------------------------------------ *)
(* experiment                                                          *)

let experiment_cmd =
  let which_arg =
    let doc =
      "Campaign id: fig5, fig6, tab1, tab2, tab3, fig7, split, ablation, topo, \
       weights, repairmoves, dvs, baselines, buffering, faults or mapping. Omit \
       the id to run every campaign (optionally filtered by $(b,--only))."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"ID" ~doc)
  in
  let only_arg =
    Arg.(value & opt_all string []
         & info [ "only" ] ~docv:"CAMPAIGN"
             ~doc:"With no positional id, run only this campaign (repeatable, \
                   order preserved) instead of all of them. An unknown name \
                   exits 2 listing the known campaigns.")
  in
  let quick_arg =
    Arg.(value & flag & info [ "quick" ] ~doc:"Scale the random suites down.")
  in
  let map_search_arg =
    Arg.(value & flag
         & info [ "map-search" ]
             ~doc:"Add an annealed task-to-tile mapping row to the $(b,topo) \
                   campaign (pinned-EAS evaluation of the search winner).")
  in
  let jobs_arg =
    Arg.(value & opt (some int) None
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Domains to fan the campaign's trials over. Defaults to \
                   $(b,NOCSCHED_JOBS) when set, otherwise the recommended \
                   domain count of the machine. Results are identical at \
                   every job count.")
  in
  let run which only quick map_search jobs obs =
    with_obs obs @@ fun () ->
    let scale = if quick then Some 0.2 else None in
    match jobs with
    | Some n when n < 1 -> Error (`Msg "--jobs must be at least 1")
    | Some _ | None ->
      let campaigns =
        [
          ( "fig5",
            fun () ->
              print_string
                (Noc_experiments.Random_suite.render
                   (Noc_experiments.Random_suite.run ?jobs ?scale
                      Noc_tgff.Category.Category_i)) );
          ( "fig6",
            fun () ->
              print_string
                (Noc_experiments.Random_suite.render
                   (Noc_experiments.Random_suite.run ?jobs ?scale
                      Noc_tgff.Category.Category_ii)) );
          ( "tab1",
            fun () ->
              print_string
                (Noc_experiments.Msb_tables.render
                   (Noc_experiments.Msb_tables.run Noc_experiments.Msb_tables.Encoder)) );
          ( "tab2",
            fun () ->
              print_string
                (Noc_experiments.Msb_tables.render
                   (Noc_experiments.Msb_tables.run Noc_experiments.Msb_tables.Decoder)) );
          ( "tab3",
            fun () ->
              print_string
                (Noc_experiments.Msb_tables.render
                   (Noc_experiments.Msb_tables.run
                      Noc_experiments.Msb_tables.Integrated)) );
          ( "fig7",
            fun () ->
              print_string (Noc_experiments.Tradeoff.render (Noc_experiments.Tradeoff.run ())) );
          ( "split",
            fun () ->
              print_string
                (Noc_experiments.Energy_split.render (Noc_experiments.Energy_split.run ())) );
          ( "ablation",
            fun () ->
              print_string
                (Noc_experiments.Ablation.render (Noc_experiments.Ablation.run ?jobs ())) );
          ( "topo",
            fun () ->
              print_string
                (Noc_experiments.Topology_compare.render
                   (Noc_experiments.Topology_compare.run ?jobs ~map_search ())) );
          ( "weights",
            fun () ->
              print_string
                (Noc_experiments.Weight_ablation.render
                   (Noc_experiments.Weight_ablation.run ?jobs ())) );
          ( "repairmoves",
            fun () ->
              let scale = if quick then Some 0.3 else None in
              print_string
                (Noc_experiments.Repair_ablation.render
                   (Noc_experiments.Repair_ablation.run ?jobs ?scale ())) );
          ( "dvs",
            fun () ->
              print_string
                (Noc_experiments.Dvs_extension.render (Noc_experiments.Dvs_extension.run ())) );
          ( "dvfs",
            fun () ->
              let rows =
                match scale with
                | Some scale ->
                  Noc_experiments.Dvfs_campaign.run ?jobs ~indices:[ 0; 1 ] ~scale ()
                | None -> Noc_experiments.Dvfs_campaign.run ?jobs ()
              in
              print_string (Noc_experiments.Dvfs_campaign.render rows) );
          ( "baselines",
            fun () ->
              print_string
                (Noc_experiments.Baselines_compare.render
                   (Noc_experiments.Baselines_compare.run ?jobs ())) );
          ( "buffering",
            fun () ->
              print_string (Noc_experiments.Buffering.render (Noc_experiments.Buffering.run ())) );
          ( "faults",
            fun () ->
              let result =
                if quick then
                  Noc_experiments.Fault_campaign.run ?jobs ~scale:0.08 ~n_graphs:2
                    ~n_trials:2 ()
                else Noc_experiments.Fault_campaign.run ?jobs ()
              in
              print_string (Noc_experiments.Fault_campaign.render result) );
          ( "mapping",
            fun () ->
              let p =
                if quick then
                  Noc_experiments.Topology_compare.pareto ?jobs ~meshes:[ (8, 8) ]
                    ~scale:0.2 ()
                else Noc_experiments.Topology_compare.pareto ?jobs ()
              in
              print_string (Noc_experiments.Topology_compare.render_pareto p) );
        ]
      in
      let known () = String.concat ", " (List.map fst campaigns) in
      let find name =
        match List.assoc_opt name campaigns with
        | Some f -> Ok (name, f)
        | None ->
          Error
            (`Msg
               (Printf.sprintf "unknown experiment %S; known campaigns: %s" name
                  (known ())))
      in
      let selected =
        match (which, only) with
        | Some _, _ :: _ ->
          Error (`Msg "pass either a positional campaign id or --only, not both")
        | Some id, [] -> Result.map (fun c -> [ c ]) (find id)
        | None, [] -> Ok campaigns
        | None, names ->
          List.fold_left
            (fun acc name ->
              Result.bind acc (fun cs -> Result.map (fun c -> cs @ [ c ]) (find name)))
            (Ok []) names
      in
      Result.map
        (List.iter (fun (name, f) ->
             Noc_obs.Log.infof "experiment %s%s" name (if quick then " (quick)" else "");
             f ()))
        selected
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate one of the paper's tables or figures.")
    Term.(term_result
            (const run $ which_arg $ only_arg $ quick_arg $ map_search_arg
             $ jobs_arg $ obs_term))

(* ------------------------------------------------------------------ *)
(* serve                                                               *)

let serve_cmd =
  let socket_arg =
    Arg.(value & opt string "/tmp/nocsched.sock"
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Unix-domain socket the daemon listens on (client mode connects \
                   to it).")
  in
  let cache_arg =
    Arg.(value & opt int 64
         & info [ "cache" ] ~docv:"N"
             ~doc:"Certified-schedule cache capacity (LRU entries).")
  in
  let jobs_arg =
    Arg.(value & opt (some int) None
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Fan concurrent pure schedule requests over N domains. \
                   Replies are bit-identical at every job count.")
  in
  let call_arg =
    Arg.(value & opt (some string) None
         & info [ "call" ] ~docv:"OP"
             ~doc:"Client mode: send one request ($(b,schedule), $(b,simulate), \
                   $(b,reschedule), $(b,stats) or $(b,shutdown)) to a running \
                   daemon, print the reply line and exit 0 when the daemon \
                   reported success.")
  in
  let raw_arg =
    Arg.(value & opt (some string) None
         & info [ "raw" ] ~docv:"LINE"
             ~doc:"Client mode: send LINE verbatim (one protocol JSON object) \
                   and print the reply.")
  in
  let input_arg =
    Arg.(value & opt (some string) None
         & info [ "input"; "i" ] ~docv:"FILE"
             ~doc:"Task graph for $(b,--call) schedule/simulate/reschedule (text \
                   format; $(b,-) reads stdin).")
  in
  let fault_arg =
    Arg.(value & opt_all string []
         & info [ "fault" ] ~docv:"SPEC"
             ~doc:"Fault spec for $(b,--call) simulate/reschedule (repeatable); \
                   syntax as in $(b,simulate).")
  in
  let self_timed_arg =
    Arg.(value & flag & info [ "self-timed" ]
           ~doc:"Work-conserving dispatch for $(b,--call) simulate.")
  in
  let decisions_arg =
    Arg.(value & flag
         & info [ "decisions" ]
             ~doc:"Ask for the EAS decision log in the $(b,--call) schedule \
                   reply.")
  in
  let serve_dvfs_arg =
    Arg.(value & flag
         & info [ "dvfs" ]
             ~doc:"Ask for DVFS slack reclamation in the $(b,--call) schedule \
                   reply (cached under its own key, never aliasing the \
                   unscaled schedule).")
  in
  let serve_vf_levels_arg =
    Arg.(value & opt (some vf_conv) None
         & info [ "vf-levels" ] ~docv:"RATIOS"
             ~doc:"V/f ladder for $(b,--call) schedule with $(b,--dvfs).")
  in
  let stats_arg =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"Daemon mode: print the counter/histogram report (request \
                   latencies included) after shutdown.")
  in
  let retries_arg =
    Arg.(value & opt int 100
         & info [ "retries" ] ~docv:"N"
             ~doc:"Client mode: connection attempts 50 ms apart, so a freshly \
                   started daemon has time to bind its socket.")
  in
  let build_call op ~input ~mesh ~algo ~faults ~self_timed ~decisions ~dvfs =
    let ctg_text () =
      match input with
      | Some path -> read_ctg_text path
      | None -> failwith ("--call " ^ op ^ " needs --input FILE")
    in
    (match (op, dvfs) with
    | "schedule", _ | _, None -> ()
    | other, Some _ -> failwith ("--dvfs only makes sense with --call schedule, not " ^ other));
    match op with
    | "stats" -> Noc_serve.Protocol.(request_to_line Stats)
    | "shutdown" -> Noc_serve.Protocol.(request_to_line Shutdown)
    | "schedule" ->
      Noc_serve.Protocol.(
        request_to_line
          (Schedule { ctg_text = ctg_text (); mesh; algo; decisions; dvfs }))
    | "simulate" ->
      Noc_serve.Protocol.(
        request_to_line
          (Simulate { ctg_text = ctg_text (); mesh; algo; faults; self_timed }))
    | "reschedule" ->
      Noc_serve.Protocol.(
        request_to_line (Reschedule { ctg_text = ctg_text (); mesh; algo; faults }))
    | other ->
      failwith
        (Printf.sprintf
           "unknown --call %S (known: schedule, simulate, reschedule, stats, shutdown)"
           other)
  in
  let run socket cache jobs call raw input mesh algo faults self_timed decisions
      dvfs vf_levels stats retries =
    Noc_obs.Log.init_from_env ();
    if vf_levels <> None && not dvfs then
      failwith "--vf-levels only makes sense with --dvfs";
    let dvfs =
      if dvfs then
        Some (Option.value vf_levels ~default:Noc_dvfs.Vf_table.default)
      else None
    in
    match (call, raw) with
    | Some _, Some _ -> Error (`Msg "--call and --raw are mutually exclusive")
    | None, None ->
      (match jobs with
      | Some n when n < 1 -> failwith "--jobs must be at least 1"
      | Some _ | None -> ());
      if cache < 1 then failwith "--cache must be at least 1";
      Noc_serve.Server.run
        { Noc_serve.Server.socket_path = socket; capacity = cache; jobs };
      if stats then print_string (Noc_obs.Report.render ());
      Ok ()
    | _ ->
      let line =
        match (call, raw) with
        | Some op, None ->
          build_call op ~input ~mesh ~algo ~faults ~self_timed ~decisions ~dvfs
        | None, Some line -> line
        | None, None | Some _, Some _ -> assert false
      in
      let reply =
        Noc_serve.Client.one_shot ~retries:(max 0 retries) ~socket_path:socket line
      in
      print_endline reply;
      (match Noc_obs.Json.parse reply with
      | Ok obj when Noc_obs.Json.member "ok" obj = Some (Noc_obs.Json.Bool true) ->
        Ok ()
      | Ok _ | Error _ ->
        Format.pp_print_flush Format.std_formatter ();
        Stdlib.exit 1)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Scheduling as a service: a Unix-socket daemon with a certified \
             schedule cache and incremental fault rescheduling (newline-delimited \
             JSON, schema $(b,nocsched/serve/v1)). Without $(b,--call)/$(b,--raw) \
             it runs the daemon in the foreground until a shutdown request.")
    Term.(term_result
            (const run $ socket_arg $ cache_arg $ jobs_arg $ call_arg $ raw_arg
             $ input_arg $ mesh_arg $ algo_arg $ fault_arg $ self_timed_arg
             $ decisions_arg $ serve_dvfs_arg $ serve_vf_levels_arg $ stats_arg
             $ retries_arg))

(* ------------------------------------------------------------------ *)
(* trace-check                                                         *)

let trace_check_cmd =
  let file_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"Chrome trace-event JSON file to validate.")
  in
  let require_counters_arg =
    Arg.(value & flag
         & info [ "require-counters" ]
             ~doc:"Also require a counter event and non-empty counter totals.")
  in
  let run file require_counters =
    Noc_obs.Log.init_from_env ();
    match Noc_obs.Trace_check.check_file ~require_counters file with
    | Ok () ->
      Format.printf "%s: valid nocsched/trace/v1@." file;
      Ok ()
    | Error msg ->
      Noc_obs.Log.errorf "%s: %s" file msg;
      Format.pp_print_flush Format.std_formatter ();
      Stdlib.exit 1
  in
  Cmd.v
    (Cmd.info "trace-check"
       ~doc:"Validate a trace produced by $(b,--trace) against the \
             $(b,nocsched/trace/v1) schema: JSON shape, per-domain span nesting, \
             counter totals. Exits 0 when valid, 1 otherwise.")
    Term.(term_result (const run $ file_arg $ require_counters_arg))

let () =
  let info =
    Cmd.info "nocsched" ~version:"1.0.0"
      ~doc:"Energy-aware communication and task scheduling for NoC architectures"
  in
  let group =
    Cmd.group info
      [
        generate_cmd; schedule_cmd; map_cmd; simulate_cmd; analyze_cmd;
        experiment_cmd; serve_cmd; trace_check_cmd;
      ]
  in
  (* Uniform failure contract: unknown subcommands, malformed flags and
     failed runs all print to stderr and exit 2 (cmdliner's defaults
     would scatter them over 124/125). Analyses that define their own
     lint-style exit codes call [Stdlib.exit] before reaching here. *)
  match Cmd.eval_value ~catch:false group with
  | Ok (`Ok ()) | Ok `Version | Ok `Help -> exit 0
  | Error (`Parse | `Term | `Exn) -> exit 2
  | exception Failure msg ->
    Printf.eprintf "nocsched: %s\n%!" msg;
    exit 2
  | exception exn ->
    Printf.eprintf "nocsched: internal error: %s\n%!" (Printexc.to_string exn);
    exit 2
