(* Quickstart: build a small application task graph by hand, schedule it
   on a heterogeneous 2x2 NoC with the energy-aware scheduler, and
   inspect the result.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* A heterogeneous 2x2 mesh: a fast RISC, a DSP, a low-power core and
     an accelerator (one per tile, XY routing between them). *)
  let platform = Noc_msb.Platforms.av_2x2 in

  (* The application: a diamond of six tasks, similar to the CTG of the
     paper's Fig. 1. Costs are given per PE: element k of each array is
     the execution time / energy on PE k. *)
  let b = Noc_ctg.Builder.create ~n_pes:(Noc_noc.Platform.n_pes platform) in
  let add name exec_times energies deadline =
    Noc_ctg.Builder.add_task b ~name ~exec_times ~energies ?deadline ()
  in
  let t0 = add "read" [| 60.; 140.; 110.; 180. |] [| 190.; 140.; 50.; 250. |] None in
  let t1 = add "filter" [| 220.; 90.; 380.; 120. |] [| 700.; 90.; 170.; 230. |] None in
  let t2 = add "analyze" [| 180.; 100.; 320.; 130. |] [| 580.; 100.; 145.; 250. |] None in
  let t3 = add "encode" [| 260.; 120.; 460.; 90. |] [| 840.; 120.; 210.; 170. |] None in
  let t4 = add "mux" [| 70.; 150.; 120.; 200. |] [| 220.; 150.; 55.; 380. |] None in
  let t5 = add "emit" [| 50.; 110.; 90.; 150. |] [| 160.; 110.; 40.; 290. |] (Some 1500.) in
  let connect src dst volume = Noc_ctg.Builder.connect b ~src ~dst ~volume in
  connect t0 t1 48_000.;
  connect t0 t2 48_000.;
  connect t1 t3 32_000.;
  connect t2 t3 16_000.;
  connect t2 t4 8_000.;
  connect t3 t4 24_000.;
  connect t4 t5 12_000.;
  let ctg = Noc_ctg.Builder.build_exn b in

  (* Schedule with EAS (slack budgeting + level scheduling + repair). *)
  let outcome = Noc_eas.Eas.schedule platform ctg in
  let schedule = outcome.Noc_eas.Eas.schedule in

  Format.printf "Application: %a on %a@.@." Noc_ctg.Ctg.pp ctg
    Noc_noc.Platform.pp platform;
  Format.printf "%a@.@."
    Noc_sched.Metrics.pp (Noc_sched.Metrics.compute platform ctg schedule);

  (* Where did every task land? *)
  Array.iter
    (fun (p : Noc_sched.Schedule.placement) ->
      let task = Noc_ctg.Ctg.task ctg p.task in
      let pe = Noc_noc.Platform.pe platform p.pe in
      Format.printf "  %-8s -> pe %d (%s), runs [%g, %g)@." task.Noc_ctg.Task.name
        p.pe (Noc_noc.Pe.kind_name pe.Noc_noc.Pe.kind) p.start p.finish)
    (Noc_sched.Schedule.placements schedule);

  (* Independent feasibility check (Definitions 3-4, dependencies,
     deadlines). *)
  (match Noc_sched.Validate.check platform ctg schedule with
  | [] -> Format.printf "@.schedule verified: feasible.@.@."
  | violations ->
    Format.printf "@.violations:@.";
    List.iter (Format.printf "  %a@." Noc_sched.Validate.pp_violation) violations);

  print_string (Noc_sched.Gantt.render ~width:64 platform ctg schedule);

  (* Compare with the performance-greedy EDF baseline. *)
  let edf = (Noc_edf.Edf.schedule platform ctg).Noc_edf.Edf.schedule in
  let eas_energy = (Noc_sched.Metrics.compute platform ctg schedule).total_energy in
  let edf_energy = (Noc_sched.Metrics.compute platform ctg edf).total_energy in
  Format.printf "@.EAS energy %.0f nJ vs EDF %.0f nJ: %.1f%% saved.@." eas_energy
    edf_energy
    (100. *. (edf_energy -. eas_energy) /. edf_energy)
