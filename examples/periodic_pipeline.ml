(* Frame pipelining: scheduling a periodic application across periods.

   The paper's encoder must sustain 40 frames/s, but its CTG describes a
   single frame. Unrolling three consecutive frames (releases at k/40 s,
   deadlines shifted accordingly) lets EAS pipeline them: frame k+1
   starts while frame k is still in flight, so the platform can sustain
   rates whose period is shorter than one frame's latency.

   Run with:  dune exec examples/periodic_pipeline.exe *)

let () =
  let platform = Noc_msb.Platforms.av_2x2 in
  let clip = Noc_msb.Profile.Foreman in
  let frame = Noc_msb.Graphs.encoder ~platform ~clip () in

  (* Single-frame latency under EAS. *)
  let single = (Noc_eas.Eas.schedule platform frame).Noc_eas.Eas.schedule in
  Format.printf "single frame: latency %.0f us vs period %.0f us (40 frames/s)@.@."
    (Noc_sched.Schedule.makespan single)
    Noc_msb.Graphs.encoder_period;

  (* Three pipelined frames. *)
  let unrolled =
    Noc_ctg.Unroll.periodic frame ~period:Noc_msb.Graphs.encoder_period ~copies:3
  in
  let outcome = Noc_eas.Eas.schedule platform unrolled in
  let s = outcome.Noc_eas.Eas.schedule in
  let metrics = Noc_sched.Metrics.compute platform unrolled s in
  Format.printf "three frames pipelined: makespan %.0f us, %d deadline misses@."
    metrics.Noc_sched.Metrics.makespan
    (Noc_sched.Metrics.miss_count metrics);
  let n = Noc_ctg.Ctg.n_tasks frame in
  List.iter
    (fun k ->
      let ids = List.init n (fun i -> (k * n) + i) in
      let start =
        List.fold_left
          (fun acc i ->
            Float.min acc (Noc_sched.Schedule.placement s i).Noc_sched.Schedule.start)
          infinity ids
      in
      let finish =
        List.fold_left
          (fun acc i ->
            Float.max acc (Noc_sched.Schedule.placement s i).Noc_sched.Schedule.finish)
          0. ids
      in
      Format.printf "  frame %d: [%.0f, %.0f) us@." k start finish)
    [ 0; 1; 2 ];
  (* At 40 frames/s the period still exceeds one frame's latency, so no
     overlap is needed. Push to 100 frames/s: now the period is
     well below the latency and the pipeline must overlap frames. *)
  let rate = 100. in
  let period = 1.0e6 /. rate in
  let fast_frame =
    Noc_msb.Graphs.encoder ~ratio:(Noc_msb.Graphs.encoder_period /. period) ~platform
      ~clip ()
  in
  let fast = Noc_ctg.Unroll.periodic fast_frame ~period ~copies:3 in
  let outcome = Noc_eas.Eas.schedule platform fast in
  let s = outcome.Noc_eas.Eas.schedule in
  Format.printf "@.at %.0f frames/s (period %.0f us < single-frame latency):@." rate
    period;
  List.iter
    (fun k ->
      let ids = List.init n (fun i -> (k * n) + i) in
      let start =
        List.fold_left
          (fun acc i ->
            Float.min acc (Noc_sched.Schedule.placement s i).Noc_sched.Schedule.start)
          infinity ids
      in
      let finish =
        List.fold_left
          (fun acc i ->
            Float.max acc (Noc_sched.Schedule.placement s i).Noc_sched.Schedule.finish)
          0. ids
      in
      Format.printf "  frame %d: [%.0f, %.0f) us@." k start finish)
    [ 0; 1; 2 ];
  Format.printf
    "  -> consecutive windows overlap; misses: %d. Pipelining sustains rates@."
    (Noc_sched.Metrics.miss_count (Noc_sched.Metrics.compute platform fast s));
  Format.printf "     whose period is shorter than one frame's latency.@.";

  (* How fast can each scheduler go? Tighten the rate until frames miss. *)
  Format.printf "@.max sustained encoding rate (3-frame pipeline, foreman):@.";
  let sustainable scheduler rate =
    let period = 1.0e6 /. rate in
    let frame = Noc_msb.Graphs.encoder ~ratio:(Noc_msb.Graphs.encoder_period /. period)
        ~platform ~clip () in
    let unrolled = Noc_ctg.Unroll.periodic frame ~period ~copies:3 in
    let s = scheduler unrolled in
    (Noc_sched.Metrics.compute platform unrolled s).Noc_sched.Metrics.deadline_misses = []
  in
  List.iter
    (fun (name, scheduler) ->
      let rec search lo hi =
        (* Invariant: lo sustainable, hi not. *)
        if hi -. lo <= 1. then lo
        else
          let mid = (lo +. hi) /. 2. in
          if sustainable scheduler mid then search mid hi else search lo mid
      in
      let max_rate = search 10. 400. in
      Format.printf "  %-4s : %.0f frames/s@." name max_rate)
    [
      ("EAS", fun g -> (Noc_eas.Eas.schedule platform g).Noc_eas.Eas.schedule);
      ("EDF", fun g -> (Noc_edf.Edf.schedule platform g).Noc_edf.Edf.schedule);
    ]
