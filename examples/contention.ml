(* Why communication must be co-scheduled (the paper's Sec. 1 argument).

   We schedule the same application twice with EAS: once with its real
   contention-aware communication scheduler, once with the naive
   fixed-delay model that earlier work used ("delay proportional to
   volume", no link contention). Both schedules are then replayed on the
   wormhole executor with real link arbitration.

   Run with:  dune exec examples/contention.exe *)

let () =
  let platform = Noc_tgff.Category.platform in
  let params =
    { Noc_tgff.Params.default with n_tasks = 120; deadline_tightness = 1.4 }
  in
  let ctg = Noc_tgff.Generate.generate ~params ~platform ~seed:7 in
  Format.printf "application: %a on %a@.@." Noc_ctg.Ctg.pp ctg
    Noc_noc.Platform.pp platform;
  let lateness schedule =
    Array.fold_left
      (fun (count, worst) (task : Noc_ctg.Task.t) ->
        match task.Noc_ctg.Task.deadline with
        | None -> (count, worst)
        | Some d ->
          let late =
            (Noc_sched.Schedule.placement schedule task.id).Noc_sched.Schedule.finish -. d
          in
          if late > 1e-9 then (count + 1, Float.max worst late) else (count, worst))
      (0, 0.) (Noc_ctg.Ctg.tasks ctg)
  in
  let report name comm_model =
    let planned =
      (Noc_eas.Eas.schedule ~comm_model platform ctg).Noc_eas.Eas.schedule
    in
    let replay = Noc_sim.Executor.run platform ctg planned in
    let pm, _ = lateness planned in
    let rm, worst = lateness replay.Noc_sim.Executor.realised in
    Format.printf "%s:@." name;
    Format.printf "  planned deadline misses : %d@." pm;
    Format.printf "  replayed deadline misses: %d (worst lateness %.0f)@." rm worst;
    Format.printf "  time blocked on links   : %.0f@.@."
      replay.Noc_sim.Executor.waiting_time
  in
  report "contention-aware (the paper's scheduler)"
    Noc_sched.Comm_sched.Contention_aware;
  report "fixed-delay communication model (prior work's assumption)"
    Noc_sched.Comm_sched.Fixed_delay;
  Format.printf
    "The fixed-delay schedule believed it was feasible; real arbitration@.";
  Format.printf "disagrees. The contention-aware table replays exactly.@."
