(* Bring your own platform and task graph.

   Shows the extension surface of the library: a custom torus platform
   with a hand-picked PE mix, a generated application saved to and
   reloaded from the text format (the role TGFF files play in the
   paper), per-resource utilisation reporting, and the DVS post-pass.

   Run with:  dune exec examples/custom_platform.exe *)

let () =
  (* A 3x2 torus with two fast cores, two DSPs and two low-power cores. *)
  let topology = Noc_noc.Topology.torus ~cols:3 ~rows:2 in
  let kinds =
    [|
      Noc_noc.Pe.Risc_fast; Noc_noc.Pe.Dsp; Noc_noc.Pe.Risc_lowpower;
      Noc_noc.Pe.Risc_lowpower; Noc_noc.Pe.Dsp; Noc_noc.Pe.Risc_fast;
    |]
  in
  let platform =
    Noc_noc.Platform.make ~topology
      ~pes:(Array.mapi (fun index kind -> Noc_noc.Pe.of_kind ~index kind) kinds)
      ()
  in
  Format.printf "platform: %a@." Noc_noc.Platform.pp platform;

  (* Generate an application, save it, reload it — the reload is exact. *)
  let params = { Noc_tgff.Params.default with n_tasks = 40 } in
  let ctg = Noc_tgff.Generate.generate ~params ~platform ~seed:5 in
  let path = Filename.temp_file "custom_platform" ".ctg" in
  Noc_ctg.Ctg_io.save ~path ctg;
  let ctg =
    match Noc_ctg.Ctg_io.load ~path with
    | Ok g -> g
    | Error msg -> failwith msg
  in
  Sys.remove path;
  Format.printf "application: %a (round-tripped through %s)@.@." Noc_ctg.Ctg.pp ctg
    (Filename.basename path);

  (* Schedule and inspect. *)
  let outcome = Noc_eas.Eas.schedule platform ctg in
  let schedule = outcome.Noc_eas.Eas.schedule in
  let metrics = Noc_sched.Metrics.compute platform ctg schedule in
  Format.printf "%a@.@." Noc_sched.Metrics.pp metrics;

  let u = Noc_sched.Utilization.compute platform schedule in
  let busiest = Noc_sched.Utilization.busiest_pe u in
  Format.printf "busiest PE: %d (%.0f%% busy, %d tasks)@."
    busiest.Noc_sched.Utilization.pe
    (100. *. busiest.Noc_sched.Utilization.utilisation)
    busiest.Noc_sched.Utilization.n_tasks;
  (match Noc_sched.Utilization.busiest_link u with
  | Some l ->
    Format.printf "busiest link: %a (%d transactions)@.@." Noc_noc.Routing.pp_link
      l.Noc_sched.Utilization.link l.Noc_sched.Utilization.n_transactions
  | None -> Format.printf "no link traffic (everything co-located)@.@.");

  (* Reclaim leftover slack with the DVS post-pass. *)
  let report = Noc_eas.Dvs.plan ctg schedule in
  Format.printf
    "DVS post-pass: computation energy %.0f -> %.0f nJ (%.1f%% dynamic saving)@."
    report.Noc_eas.Dvs.computation_energy_before
    report.Noc_eas.Dvs.computation_energy_after
    (100. *. Noc_eas.Dvs.saving report)
