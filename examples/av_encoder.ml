(* The paper's first multimedia workload: an MP3/H.263 audio/video
   encoder pair (24 tasks) scheduled on a heterogeneous 2x2 NoC under a
   40 frames/s deadline, for each of the three clips.

   Run with:  dune exec examples/av_encoder.exe *)

let () =
  let platform = Noc_msb.Platforms.av_2x2 in
  Format.printf "A/V encoder on %a, deadline %.0f us (40 frames/s)@.@."
    Noc_noc.Platform.pp platform Noc_msb.Graphs.encoder_period;
  List.iter
    (fun clip ->
      let ctg = Noc_msb.Graphs.encoder ~platform ~clip () in
      let eas = Noc_eas.Eas.schedule platform ctg in
      let edf = Noc_edf.Edf.schedule platform ctg in
      let m s = Noc_sched.Metrics.compute platform ctg s in
      let me = m eas.Noc_eas.Eas.schedule and md = m edf.Noc_edf.Edf.schedule in
      Format.printf
        "clip %-8s EAS %8.0f nJ (comp %7.0f + comm %6.0f, %d misses)@."
        (Noc_msb.Profile.clip_name clip)
        me.total_energy me.computation_energy me.communication_energy
        (Noc_sched.Metrics.miss_count me);
      Format.printf
        "              EDF %8.0f nJ (comp %7.0f + comm %6.0f) -> %.1f%% saved@."
        md.total_energy md.computation_energy md.communication_energy
        (100. *. (md.total_energy -. me.total_energy) /. md.total_energy);
      Format.printf "              average hops per packet: EDF %.2f, EAS %.2f@.@."
        md.average_hops me.average_hops)
    Noc_msb.Profile.all_clips;
  (* Show the foreman schedule itself. *)
  let ctg = Noc_msb.Graphs.encoder ~platform ~clip:Noc_msb.Profile.Foreman () in
  let schedule = (Noc_eas.Eas.schedule platform ctg).Noc_eas.Eas.schedule in
  Format.printf "EAS schedule, foreman (letters are tasks, # is link traffic):@.";
  print_string (Noc_sched.Gantt.render ~width:68 platform ctg schedule)
