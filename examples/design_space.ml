(* Design-space exploration: how do mesh size and deadline tightness
   trade energy against feasibility for a fixed application?

   The same 80-task TGFF-like application is scheduled on 2x2 .. 4x4
   heterogeneous meshes at several deadline tightness levels; for each
   point we report the EAS energy, the makespan and whether deadlines
   hold. This is the kind of platform-sizing question the paper's
   framework is built to answer.

   Run with:  dune exec examples/design_space.exe *)

let () =
  let meshes = [ (2, 2); (3, 3); (4, 4) ] in
  let tightnesses = [ 3.0; 2.2; 1.6; 1.2 ] in
  Format.printf
    "EAS energy (nJ) / makespan / deadline misses, 80-task application@.@.";
  Format.printf "%-14s" "tightness";
  List.iter (fun (c, r) -> Format.printf "%22s" (Printf.sprintf "%dx%d mesh" c r)) meshes;
  Format.printf "@.";
  List.iter
    (fun tightness ->
      Format.printf "%-14.1f" tightness;
      List.iter
        (fun (cols, rows) ->
          let platform = Noc_noc.Platform.heterogeneous_mesh ~seed:7 ~cols ~rows () in
          let params =
            {
              Noc_tgff.Params.default with
              n_tasks = 80;
              deadline_tightness = tightness;
            }
          in
          let ctg = Noc_tgff.Generate.generate ~params ~platform ~seed:11 in
          let outcome = Noc_eas.Eas.schedule platform ctg in
          let m =
            Noc_sched.Metrics.compute platform ctg outcome.Noc_eas.Eas.schedule
          in
          let cell =
            Printf.sprintf "%.0f/%.0f/%d" m.total_energy m.makespan
              (Noc_sched.Metrics.miss_count m)
          in
          Format.printf "%22s" cell)
        meshes;
      Format.printf "@.")
    tightnesses;
  Format.printf
    "@.Reading: more tiles buy energy (more efficient PEs reachable);@.";
  Format.printf
    "tighter deadlines cost energy (fast, hungry PEs) until infeasibility.@."
