.PHONY: all build test bench bench-json quick-bench verify examples doc clean

all: build

build:
	dune build @all

# Tier-1 gate: the full alcotest/qcheck suite, including the timeline
# differential tests and the scheduler golden-energy oracle. `dune
# runtest` is incremental; use `dune runtest --force` to re-run green
# suites.
test:
	dune runtest

# Every table and figure of the paper, full size (~1 min).
bench:
	dune exec bench/main.exe

# Scaled-down random suites for a fast smoke run.
quick-bench:
	dune exec bench/main.exe -- --quick

# Persisted bench gate: timeline micro-benchmark medians plus end-to-end
# EAS wall time, written to BENCH_timeline.json (committed so later PRs
# have a trajectory to regress against). Exits non-zero if the indexed
# timeline is less than 5x the reference list implementation.
bench-json:
	dune exec bench/main.exe -- --json BENCH_timeline.json

# The full gate CI runs: build, the complete test suite, then the
# persisted bench gates (timeline regression + the fault-campaign
# survivability table written to BENCH_faults.json).
verify: build test bench-json
	dune exec bench/main.exe -- faults

examples:
	dune exec examples/quickstart.exe
	dune exec examples/av_encoder.exe
	dune exec examples/design_space.exe
	dune exec examples/contention.exe
	dune exec examples/custom_platform.exe
	dune exec examples/periodic_pipeline.exe

doc:
	dune build @doc

clean:
	dune clean
