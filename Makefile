.PHONY: all build test bench bench-json bench-parallel bench-obs bench-serve bench-routing bench-mapping bench-dvfs serve-smoke trace-smoke quick-bench analyze analyze-adaptive verify examples doc clean

all: build

build:
	dune build @all

# Tier-1 gate: the full alcotest/qcheck suite, including the timeline
# differential tests and the scheduler golden-energy oracle. `dune
# runtest` is incremental; use `dune runtest --force` to re-run green
# suites.
test:
	dune runtest

# Every table and figure of the paper, full size (~1 min).
bench:
	dune exec bench/main.exe

# Scaled-down random suites for a fast smoke run.
quick-bench:
	dune exec bench/main.exe -- --quick

# Persisted bench gate: timeline micro-benchmark medians plus end-to-end
# EAS wall time over 10 category-I seeds (p50/p90), written to
# BENCH_timeline.json (committed so later PRs have a trajectory to
# regress against). Exits non-zero if the indexed timeline is less than
# 5x the reference list implementation, or if the category-I EAS p50 is
# less than 5x faster than the 0.0642 s pre-kernel baseline.
# usage: make bench-json                # writes + gates BENCH_timeline.json
bench-json:
	dune exec bench/main.exe -- --json BENCH_timeline.json

# Parallel-execution gate: times the category-I random suite serially
# (--jobs 1) and on the domain pool, checks the results are bit-for-bit
# identical, and writes BENCH_parallel.json (committed). The >= 1.7x
# speedup threshold binds only on machines that expose >= 2 cores; the
# divergence check always binds.
# usage: make bench-parallel          # writes + gates BENCH_parallel.json
bench-parallel:
	dune exec bench/main.exe -- parallel

# Observability gate: disabled-instrumentation overhead on the
# category-I suite must stay within budget (analytic estimate <= 3%)
# and counters/decision logs must be bit-identical at --jobs 1/2/4.
# Writes BENCH_obs.json (committed).
# usage: make bench-obs               # writes + gates BENCH_obs.json
bench-obs:
	dune exec bench/main.exe -- obs

# Scheduling-service gate: in-process handler latency on cache hits
# must be >= 10x below the cold p99, the incremental reschedule must be
# >= 2x faster than a full EAS rerun, and requests/sec is measured
# through a real Unix-socket daemon. Writes BENCH_serve.json (committed).
# usage: make bench-serve             # writes + gates BENCH_serve.json
bench-serve:
	dune exec bench/main.exe -- serve

# Turn-model routing gate: the relation proofs on the 8x8 mesh must be
# diagnostic-free for all three models, every fully turn-legal degraded
# route set in the Monte-Carlo sweep must be acyclic, and west-first
# must keep solving the PR-3 two-fault detour cycle. Writes
# BENCH_routing.json (committed).
# usage: make bench-routing           # writes + gates BENCH_routing.json
bench-routing:
	dune exec bench/main.exe -- routing

# Mapping-search gate: swap delta-eval must be >= 20x faster than a
# full objective recompute at category-III scale (~2000 tasks, 16x16),
# the annealed balance=0 point must never cost more pinned-EAS energy
# than the identity mapping on any swept mesh, and search results must
# be identical across --jobs 1/2/4 and chain-count prefixes. Writes
# BENCH_mapping.json (committed), embedding the energy/latency Pareto
# table.
# usage: make bench-mapping           # writes + gates BENCH_mapping.json
bench-mapping:
	dune exec bench/main.exe -- mapping

# DVFS slack-reclamation gate: the EAS vs EAS+DVFS ablation over the
# category I/II suites and the MSB A/V benchmarks must reclaim energy
# on every category-I instance, introduce no deadline miss the unscaled
# schedule did not have, pass check_scaled certification on every
# scaled schedule, and produce bit-identical rows at --jobs 1/2/4.
# Writes BENCH_dvfs.json (committed).
# usage: make bench-dvfs              # writes + gates BENCH_dvfs.json
bench-dvfs:
	dune exec bench/main.exe -- dvfs

# End-to-end daemon smoke: start `nocsched serve` on a private socket,
# run a schedule and an incremental reschedule through the client, ask
# for a clean shutdown, and require every reply to be ok. The built
# binary is used directly (dune exec would contend for the build lock
# with the backgrounded daemon), and the client retries the connect
# 50 ms apart, so no sleep is needed after the daemon starts.
serve-smoke: build
	@set -e; \
	SOCK=/tmp/nocsched-serve-smoke-$$$$.sock; \
	BIN=_build/default/bin/nocsched.exe; \
	rm -f $$SOCK; \
	$$BIN serve --socket $$SOCK & \
	DAEMON=$$!; \
	trap 'kill $$DAEMON 2>/dev/null || true' EXIT; \
	$$BIN serve --socket $$SOCK --call schedule --input examples/pipeline_4x4.ctg; \
	$$BIN serve --socket $$SOCK --call reschedule \
	  --input examples/pipeline_4x4.ctg --fault pe:1; \
	$$BIN serve --socket $$SOCK --call shutdown; \
	wait $$DAEMON; \
	echo "serve-smoke: ok"

# End-to-end trace smoke: schedule the example CTG with tracing, the
# decision log and the stats report all on, then validate the exported
# Chrome trace against the nocsched/trace/v1 schema (counters required).
trace-smoke: build
	dune exec bin/nocsched.exe -- schedule examples/pipeline_4x4.ctg \
	  --trace /tmp/nocsched-trace-smoke.json \
	  --decisions /tmp/nocsched-decisions-smoke.jsonl --stats
	dune exec bin/nocsched.exe -- trace-check /tmp/nocsched-trace-smoke.json \
	  --require-counters
	test -s /tmp/nocsched-decisions-smoke.jsonl

# Static analysis over the shipped models: deadlock-freedom of the
# route sets, CTG/platform lints and certification of the committed
# example schedule. Lint semantics: warnings (exit 1) are tolerated,
# error-severity diagnostics (exit 2) fail the target.
analyze: build
	dune exec bin/nocsched.exe -- analyze --ctg examples/pipeline_4x4.ctg \
	  --schedule examples/pipeline_4x4.sched || [ $$? -eq 1 ]
	dune exec bin/nocsched.exe -- analyze || [ $$? -eq 1 ]
	dune exec bin/nocsched.exe -- analyze --benchmark integrated:foreman || [ $$? -eq 1 ]
	dune exec bin/nocsched.exe -- analyze --platform --mesh 8x8 || [ $$? -eq 1 ]

# Adaptive-routing smoke: the relation proofs must certify both turn
# models on the acceptance mesh (same lint semantics as `analyze`), and
# an end-to-end schedule under west-first must certify.
analyze-adaptive: build
	dune exec bin/nocsched.exe -- analyze --platform --mesh 8x8 --routing west-first || [ $$? -eq 1 ]
	dune exec bin/nocsched.exe -- analyze --platform --mesh 8x8 --routing odd-even || [ $$? -eq 1 ]
	dune exec bin/nocsched.exe -- schedule --benchmark tgff:1 --tasks 20 --routing west-first

# The full gate CI runs: build, the complete test suite, the static
# analysis sweeps (deterministic and adaptive routing), the trace and
# daemon smokes, then the persisted bench gates (timeline regression,
# parallel-execution determinism/speedup, the observability
# overhead/determinism gate, the scheduling-service latency gate, the
# turn-model routing gate, the mapping-search delta-eval/Pareto gate,
# the DVFS slack-reclamation gate, and the fault-campaign survivability
# table written to BENCH_faults.json).
verify: build test analyze analyze-adaptive trace-smoke serve-smoke bench-json bench-parallel bench-obs bench-serve bench-routing bench-mapping bench-dvfs
	dune exec bench/main.exe -- faults

examples:
	dune exec examples/quickstart.exe
	dune exec examples/av_encoder.exe
	dune exec examples/design_space.exe
	dune exec examples/contention.exe
	dune exec examples/custom_platform.exe
	dune exec examples/periodic_pipeline.exe

doc:
	dune build @doc

clean:
	dune clean
