.PHONY: all build test bench quick-bench examples doc clean

all: build

build:
	dune build @all

test:
	dune runtest

# Every table and figure of the paper, full size (~1 min).
bench:
	dune exec bench/main.exe

# Scaled-down random suites for a fast smoke run.
quick-bench:
	dune exec bench/main.exe -- --quick

examples:
	dune exec examples/quickstart.exe
	dune exec examples/av_encoder.exe
	dune exec examples/design_space.exe
	dune exec examples/contention.exe
	dune exec examples/custom_platform.exe
	dune exec examples/periodic_pipeline.exe

doc:
	dune build @doc

clean:
	dune clean
