(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (see DESIGN.md's experiment index), plus Bechamel
   micro-benchmarks of the schedulers and the timeline substrate.

   Usage:
     dune exec bench/main.exe                 # every experiment, paper size
     dune exec bench/main.exe -- --quick      # scaled-down graphs
     dune exec bench/main.exe -- fig5 tab1    # a subset
     dune exec bench/main.exe -- --json BENCH_timeline.json
                                              # persisted bench gate only
     dune exec bench/main.exe -- parallel    # serial-vs-parallel gate,
                                              # persists BENCH_parallel.json

   Experiments: fig5 fig6 tab1 tab2 tab3 fig7 split ablation faults
   parallel micro. *)

let section title =
  Printf.printf "\n================ %s ================\n%!" title

let run_fig ~quick kind title =
  section title;
  let scale = if quick then Some 0.2 else None in
  let result = Noc_experiments.Random_suite.run ?scale kind in
  print_string (Noc_experiments.Random_suite.render result)

let fig5 ~quick = run_fig ~quick Noc_tgff.Category.Category_i
    "Fig. 5: random benchmarks, category I (energy, nJ)"

let fig6 ~quick = run_fig ~quick Noc_tgff.Category.Category_ii
    "Fig. 6: random benchmarks, category II (tight deadlines)"

let tab which title =
  section title;
  print_string (Noc_experiments.Msb_tables.render (Noc_experiments.Msb_tables.run which))

let fig7 () =
  section "Fig. 7: performance / energy trade-off";
  print_string (Noc_experiments.Tradeoff.render (Noc_experiments.Tradeoff.run ()))

let split () =
  section "Sec. 6.2 in-text: computation/communication energy split";
  print_string (Noc_experiments.Energy_split.render (Noc_experiments.Energy_split.run ()))

let ablation () =
  section "Ablation: contention-aware vs fixed-delay communication";
  print_string (Noc_experiments.Ablation.render (Noc_experiments.Ablation.run ()))

let topo () =
  section "Extension (Sec. 7): mesh vs torus vs honeycomb";
  print_string
    (Noc_experiments.Topology_compare.render (Noc_experiments.Topology_compare.run ()))

let weights () =
  section "Ablation: slack-weighting schemes (EAS Step 1)";
  print_string
    (Noc_experiments.Weight_ablation.render (Noc_experiments.Weight_ablation.run ()))

let buffering () =
  section "Eq. (1) validation: measured buffering energy";
  print_string (Noc_experiments.Buffering.render (Noc_experiments.Buffering.run ()))

let baselines () =
  section "Extended baselines: EAS vs EDF vs DLS vs energy-greedy";
  print_string
    (Noc_experiments.Baselines_compare.render (Noc_experiments.Baselines_compare.run ()))

let dvs () =
  section "Extension: DVS slack reclamation on top of EAS";
  print_string
    (Noc_experiments.Dvs_extension.render (Noc_experiments.Dvs_extension.run ()))

let repair_moves ~quick =
  section "Ablation: repair move kinds (EAS Step 3)";
  let scale = if quick then Some 0.3 else None in
  print_string
    (Noc_experiments.Repair_ablation.render (Noc_experiments.Repair_ablation.run ?scale ()))

let faults ~quick =
  section "Reliability: Monte-Carlo fault campaign (EAS vs EDF survivability)";
  let result =
    if quick then Noc_experiments.Fault_campaign.run ~scale:0.08 ~n_graphs:2 ~n_trials:2 ()
    else Noc_experiments.Fault_campaign.run ()
  in
  print_string (Noc_experiments.Fault_campaign.render result);
  let file = "BENCH_faults.json" in
  let oc = open_out file in
  output_string oc (Noc_experiments.Fault_campaign.to_json result);
  close_out oc;
  Printf.printf "wrote %s\n" file

let micro () =
  section "Micro-benchmarks (Bechamel)";
  let open Bechamel in
  let open Toolkit in
  let platform = Noc_noc.Platform.heterogeneous_mesh ~seed:42 ~cols:4 ~rows:4 () in
  let params = { Noc_tgff.Params.default with n_tasks = 60 } in
  let ctg = Noc_tgff.Generate.generate ~params ~platform ~seed:0 in
  let msb = Noc_msb.Graphs.integrated ~platform:Noc_msb.Platforms.av_3x3
      ~clip:Noc_msb.Profile.Foreman () in
  let tests =
    Test.make_grouped ~name:"nocsched"
      [
        Test.make ~name:"eas/tgff-60"
          (Staged.stage (fun () ->
               ignore (Noc_eas.Eas.schedule platform ctg)));
        Test.make ~name:"eas-base/tgff-60"
          (Staged.stage (fun () ->
               ignore (Noc_eas.Eas.schedule ~repair:false platform ctg)));
        Test.make ~name:"edf/tgff-60"
          (Staged.stage (fun () -> ignore (Noc_edf.Edf.schedule platform ctg)));
        Test.make ~name:"eas/msb-40"
          (Staged.stage (fun () ->
               ignore (Noc_eas.Eas.schedule Noc_msb.Platforms.av_3x3 msb)));
        Test.make ~name:"budget/tgff-60"
          (Staged.stage (fun () -> ignore (Noc_eas.Budget.compute ctg)));
        Test.make ~name:"simulate/msb-40"
          (Staged.stage
             (let s =
                (Noc_eas.Eas.schedule Noc_msb.Platforms.av_3x3 msb).schedule
              in
              fun () -> ignore (Noc_sim.Executor.run Noc_msb.Platforms.av_3x3 msb s)));
        Test.make ~name:"timeline-indexed/reserve-gap"
          (Staged.stage (fun () ->
               let tl = Noc_util.Timeline.create () in
               for i = 0 to 99 do
                 let start = float_of_int (2 * i) in
                 Noc_util.Timeline.reserve tl
                   (Noc_util.Interval.make ~start ~stop:(start +. 1.))
               done;
               ignore (Noc_util.Timeline.earliest_gap tl ~after:0. ~duration:1.5)));
        Test.make ~name:"timeline-map/reserve-gap"
          (Staged.stage (fun () ->
               let tl = Noc_util.Timeline_map.create () in
               for i = 0 to 99 do
                 let start = float_of_int (2 * i) in
                 Noc_util.Timeline_map.reserve tl
                   (Noc_util.Interval.make ~start ~stop:(start +. 1.))
               done;
               ignore (Noc_util.Timeline_map.earliest_gap tl ~after:0. ~duration:1.5)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let ns =
        match Analyze.OLS.estimates ols with Some (t :: _) -> t | Some [] | None -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  List.iter
    (fun (name, ns) -> Printf.printf "%-28s %12.1f ns/run (%.3f ms)\n" name ns (ns /. 1e6))
    (List.sort compare !rows)

(* ------------------------------------------------------------------ *)
(* Persisted bench gate (--json FILE): timeline micro-benchmark medians
   and end-to-end EAS wall times, written as machine-readable JSON so
   later PRs have a recorded trajectory to regress against. The same
   operations run against the indexed Timeline and the naive
   Timeline_reference model, giving each report a built-in baseline. *)

module Json_bench = struct
  module Interval = Noc_util.Interval

  (* The operations the gate exercises, over either implementation. *)
  module type TIMELINE = sig
    type t

    val create : unit -> t
    val reserve : t -> Interval.t -> unit
    val release : t -> Interval.t -> unit
    val earliest_gap : t -> after:float -> duration:float -> float
  end

  let median samples =
    let a = Array.of_list samples in
    Array.sort Float.compare a;
    let n = Array.length a in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

  let time_s f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0

  let median_of ~repeats f = median (List.init repeats (fun _ -> time_s f))

  module Ops (T : TIMELINE) = struct
    (* Unit slots at even starts: [0,1) [2,3) ... — every probe lands in
       a populated table with gaps everywhere. *)
    let build n =
      let tl = T.create () in
      for i = 0 to n - 1 do
        let start = float_of_int (2 * i) in
        T.reserve tl (Interval.make ~start ~stop:(start +. 1.))
      done;
      tl

    (* ns per reserve when appending [slots] reservations to a fresh
       table (the scheduler's dominant pattern). *)
    let bench_reserve ~repeats ~slots =
      let per_run () = ignore (build slots) in
      median_of ~repeats per_run *. 1e9 /. float_of_int slots

    (* ns per earliest-gap query against a prebuilt [slots]-slot table,
       with deterministic pseudo-random release times. *)
    let bench_gap ~repeats ~slots =
      let tl = build slots in
      let queries = 1_000 in
      let per_run () =
        let rng = Noc_util.Prng.create ~seed:0xbe7c in
        for _ = 1 to queries do
          let after = Noc_util.Prng.float rng ~bound:(float_of_int (2 * slots)) in
          ignore (T.earliest_gap tl ~after ~duration:0.5)
        done
      in
      median_of ~repeats per_run *. 1e9 /. float_of_int queries

    (* ns per journal entry undone: reserve a burst at the end of a
       [slots]-slot table, then release it in reverse order — exactly
       what Resource_state.rollback does after a tentative F(i,k)
       probe. *)
    let bench_rollback ~repeats ~slots =
      let tl = build slots in
      let burst = 100 in
      let base = float_of_int (2 * slots) in
      let ivs =
        List.init burst (fun i ->
            let start = base +. float_of_int (2 * i) in
            Interval.make ~start ~stop:(start +. 1.))
      in
      let per_run () =
        List.iter (fun iv -> T.reserve tl iv) ivs;
        List.iter (fun iv -> T.release tl iv) (List.rev ivs)
      in
      median_of ~repeats per_run *. 1e9 /. float_of_int (2 * burst)
  end

  module Indexed = Ops (Noc_util.Timeline)
  module Reference = Ops (Noc_util.Timeline_reference)

  type row = { op : string; slots : int; indexed_ns : float; reference_ns : float }

  let micro_rows () =
    List.concat_map
      (fun slots ->
        (* The O(n^2) reference rebuild at 10k slots is slow; three
           repeats keep the gate under a few seconds. *)
        let repeats = if slots >= 10_000 then 3 else 7 in
        [
          {
            op = "reserve";
            slots;
            indexed_ns = Indexed.bench_reserve ~repeats ~slots;
            reference_ns = Reference.bench_reserve ~repeats ~slots;
          };
          {
            op = "gap";
            slots;
            indexed_ns = Indexed.bench_gap ~repeats ~slots;
            reference_ns = Reference.bench_gap ~repeats ~slots;
          };
          {
            op = "rollback";
            slots;
            indexed_ns = Indexed.bench_rollback ~repeats ~slots;
            reference_ns = Reference.bench_rollback ~repeats ~slots;
          };
        ])
      [ 1_000; 10_000 ]

  (* Pre-kernel baseline: the category-I EAS median recorded by this
     gate before the flat-array kernel landed (BENCH_timeline.json
     history). The kernel PR's acceptance bar is >= 5x against it. *)
  let eas_baseline_s = 0.0642
  let eas_speedup_threshold = 5.

  let eas_rows () =
    let platform = Noc_tgff.Category.platform in
    let params = Noc_tgff.Category.params Noc_tgff.Category.Category_i in
    List.map
      (fun index ->
        let ctg = Noc_tgff.Generate.generate ~params ~platform ~seed:(1_000 + index) in
        let wall =
          median_of ~repeats:3 (fun () ->
              ignore (Noc_eas.Eas.schedule platform ctg))
        in
        (Printf.sprintf "category-i/%d" index, wall))
      (List.init 10 Fun.id)

  let run file =
    (* Open the output before the measurements so a bad path fails in
       milliseconds, not after the full bench. *)
    let oc =
      try open_out file
      with Sys_error msg ->
        Printf.eprintf "cannot write bench output: %s\n" msg;
        exit 1
    in
    let rows = micro_rows () in
    let eas = eas_rows () in
    let combined which =
      List.fold_left
        (fun acc r ->
          if r.slots = 10_000 && (r.op = "reserve" || r.op = "gap") then
            acc +. which r
          else acc)
        0. rows
    in
    let speedup =
      combined (fun r -> r.reference_ns) /. combined (fun r -> r.indexed_ns)
    in
    let buf = Buffer.create 2048 in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf "  \"schema\": \"nocsched/bench-timeline/v2\",\n";
    Buffer.add_string buf "  \"timeline_ns_per_op\": [\n";
    List.iteri
      (fun i r ->
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"op\": %S, \"slots\": %d, \"indexed\": %.1f, \"reference\": \
              %.1f}%s\n"
             r.op r.slots r.indexed_ns r.reference_ns
             (if i = List.length rows - 1 then "" else ",")))
      rows;
    Buffer.add_string buf "  ],\n";
    Buffer.add_string buf
      (Printf.sprintf "  \"speedup_reserve_gap_10k_vs_reference\": %.1f,\n" speedup);
    Buffer.add_string buf "  \"eas_wall_s\": [\n";
    List.iteri
      (fun i (name, wall) ->
        Buffer.add_string buf
          (Printf.sprintf "    {\"benchmark\": %S, \"median_s\": %.4f}%s\n" name wall
             (if i = List.length eas - 1 then "" else ",")))
      eas;
    Buffer.add_string buf "  ],\n";
    let walls = Array.of_list (List.map snd eas) in
    let p50 = Noc_util.Stats.percentile walls ~p:50. in
    let p90 = Noc_util.Stats.percentile walls ~p:90. in
    let eas_speedup = eas_baseline_s /. p50 in
    Buffer.add_string buf
      (Printf.sprintf "  \"eas_category_i_p50_s\": %.4f,\n" p50);
    Buffer.add_string buf
      (Printf.sprintf "  \"eas_category_i_p90_s\": %.4f,\n" p90);
    Buffer.add_string buf
      (Printf.sprintf "  \"eas_baseline_s\": %.4f,\n" eas_baseline_s);
    Buffer.add_string buf
      (Printf.sprintf "  \"eas_speedup_vs_baseline\": %.1f\n" eas_speedup);
    Buffer.add_string buf "}\n";
    output_string oc (Buffer.contents buf);
    close_out oc;
    print_string (Buffer.contents buf);
    Printf.printf "wrote %s\n" file;
    if speedup < 5. then begin
      Printf.eprintf
        "bench gate FAILED: reserve+gap at 10k slots only %.1fx faster than the \
         reference list implementation (need >= 5x)\n"
        speedup;
      exit 1
    end;
    if eas_speedup < eas_speedup_threshold then begin
      Printf.eprintf
        "bench gate FAILED: category-I EAS p50 wall time %.4f s is only %.1fx \
         faster than the %.4f s pre-kernel baseline (need >= %.1fx)\n"
        p50 eas_speedup eas_baseline_s eas_speedup_threshold;
      exit 1
    end
end

(* ------------------------------------------------------------------ *)
(* Parallel bench gate (parallel): serial vs parallel campaign wall
   times plus a bit-for-bit divergence check, persisted as
   BENCH_parallel.json. The divergence gate is unconditional — the pool
   must be invisible in the results at every job count. The speedup gate
   only binds when the machine actually exposes a second core; on a
   single-core host the run still records the measured ratio so the
   trajectory is visible across environments. *)

module Parallel_bench = struct
  let threshold = 1.7

  (* Every field of a suite result except the wall-clock runtimes,
     rendered as hex floats so serial and parallel runs are compared bit
     for bit. *)
  let fingerprint (result : Noc_experiments.Random_suite.result) =
    let buf = Buffer.create 4096 in
    let eval (e : Noc_experiments.Runner.evaluation) =
      let m = e.Noc_experiments.Runner.metrics in
      Buffer.add_string buf
        (Printf.sprintf
           "%s total=%h comp=%h comm=%h mk=%h hops=%h miss=%d rv=%d; "
           (Noc_experiments.Runner.algo_name e.Noc_experiments.Runner.algo)
           m.Noc_sched.Metrics.total_energy m.Noc_sched.Metrics.computation_energy
           m.Noc_sched.Metrics.communication_energy m.Noc_sched.Metrics.makespan
           m.Noc_sched.Metrics.average_hops
           (Noc_sched.Metrics.miss_count m)
           e.Noc_experiments.Runner.resource_violations)
    in
    List.iter
      (fun (r : Noc_experiments.Random_suite.row) ->
        Buffer.add_string buf (Printf.sprintf "row %d: " r.index);
        eval r.eas_base;
        eval r.eas;
        eval r.edf;
        Buffer.add_char buf '\n')
      result.Noc_experiments.Random_suite.rows;
    Buffer.add_string buf
      (Printf.sprintf "avg_edf_excess=%h\n"
         result.Noc_experiments.Random_suite.average_edf_excess);
    Buffer.contents buf

  let run ~quick file =
    let oc =
      try open_out file
      with Sys_error msg ->
        Printf.eprintf "cannot write bench output: %s\n" msg;
        exit 1
    in
    let scale = if quick then Some 0.3 else None in
    let suite jobs =
      Noc_experiments.Random_suite.run ~jobs ?scale Noc_tgff.Category.Category_i
    in
    let jobs = max 2 (Noc_util.Pool.default_jobs ()) in
    let cores = Domain.recommended_domain_count () in
    (* Divergence first (also warms code paths and route memos), then
       the timed runs. *)
    let suite_divergence = fingerprint (suite 1) <> fingerprint (suite jobs) in
    let campaign j =
      Noc_experiments.Fault_campaign.to_json
        (Noc_experiments.Fault_campaign.run ~jobs:j ~scale:0.08 ~n_graphs:2
           ~n_trials:2 ())
    in
    let campaign_divergence = campaign 1 <> campaign jobs in
    let serial_wall = Json_bench.median_of ~repeats:3 (fun () -> ignore (suite 1)) in
    let parallel_wall =
      Json_bench.median_of ~repeats:3 (fun () -> ignore (suite jobs))
    in
    let speedup = serial_wall /. parallel_wall in
    let gate_enforced = cores >= 2 in
    let divergence = suite_divergence || campaign_divergence in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf "  \"schema\": \"nocsched/bench-parallel/v1\",\n";
    Buffer.add_string buf
      (Printf.sprintf "  \"workload\": \"random-suite/category-i%s\",\n"
         (if quick then " (scale 0.3)" else ""));
    Buffer.add_string buf (Printf.sprintf "  \"jobs\": %d,\n" jobs);
    Buffer.add_string buf (Printf.sprintf "  \"cores_available\": %d,\n" cores);
    Buffer.add_string buf (Printf.sprintf "  \"serial_wall_s\": %.4f,\n" serial_wall);
    Buffer.add_string buf
      (Printf.sprintf "  \"parallel_wall_s\": %.4f,\n" parallel_wall);
    Buffer.add_string buf (Printf.sprintf "  \"speedup\": %.3f,\n" speedup);
    Buffer.add_string buf (Printf.sprintf "  \"gate_threshold\": %.1f,\n" threshold);
    Buffer.add_string buf
      (Printf.sprintf "  \"gate_enforced\": %b,\n" gate_enforced);
    Buffer.add_string buf
      (Printf.sprintf "  \"random_suite_divergence\": %b,\n" suite_divergence);
    Buffer.add_string buf
      (Printf.sprintf "  \"fault_campaign_divergence\": %b\n" campaign_divergence);
    Buffer.add_string buf "}\n";
    output_string oc (Buffer.contents buf);
    close_out oc;
    print_string (Buffer.contents buf);
    Printf.printf "wrote %s\n" file;
    if divergence then begin
      Printf.eprintf
        "bench gate FAILED: parallel results diverge from the serial run \
         (random suite: %b, fault campaign: %b)\n"
        suite_divergence campaign_divergence;
      exit 1
    end;
    if gate_enforced && speedup < threshold then begin
      Printf.eprintf
        "bench gate FAILED: %d-domain speedup only %.2fx on %d cores (need >= \
         %.1fx)\n"
        jobs speedup cores threshold;
      exit 1
    end
end

(* ------------------------------------------------------------------ *)
(* Observability bench gate (obs): cost of the Noc_obs instrumentation,
   persisted as BENCH_obs.json.

   Two gates:
   - Disabled overhead <= 3% of the untraced category-I suite wall time.
     There is no un-instrumented binary to diff against, so the bound is
     analytic: an enabled run counts how many instrumented calls the
     suite actually makes (counter increments, spans, decision records),
     micro-benchmarks price one *disabled* call of each primitive, and
     the product over the disabled wall time bounds the drag the
     always-compiled-in instrumentation can add. The enabled/disabled
     wall ratio is recorded as well (informational, not gated — it
     includes real work: buffering events, wall-clock reads).
   - Determinism: counter totals and the decision-log export must be
     bit-identical at --jobs 1, 2 and 4. Route memos are warmed first so
     the in-process cache state is the same for every measured run. *)

module Obs_bench = struct
  let overhead_threshold_pct = 3.0
  let job_counts = [ 1; 2; 4 ]

  let suite ~jobs () =
    ignore
      (Noc_experiments.Random_suite.run ~jobs ~scale:0.2 Noc_tgff.Category.Category_i)

  let disable_all () =
    Noc_obs.Counters.set_enabled false;
    Noc_obs.Trace.set_enabled false;
    Noc_obs.Decisions.set_enabled false

  let reset_all () =
    Noc_obs.Counters.reset ();
    Noc_obs.Trace.reset ();
    Noc_obs.Decisions.reset ()

  (* ns per disabled call: time [n] calls of [f] through the same
     loop-plus-indirect-call harness as an empty closure and charge the
     primitive the difference, so the price is the marginal cost of the
     call itself (real sites call the primitives directly). *)
  let price =
    let loop ~n g =
      Json_bench.median_of ~repeats:5 (fun () ->
          for _ = 1 to n do
            g ()
          done)
    in
    fun ~n f ->
      let baseline = loop ~n (fun () -> ()) in
      Float.max 0. ((loop ~n f -. baseline) *. 1e9 /. float_of_int n)

  let run file =
    let oc =
      try open_out file
      with Sys_error msg ->
        Printf.eprintf "cannot write bench output: %s\n" msg;
        exit 1
    in
    disable_all ();
    reset_all ();
    (* Warm code paths and the shared platform's route memo: later runs
       all see the same fully-populated cache. *)
    suite ~jobs:1 ();
    let disabled_wall = Json_bench.median_of ~repeats:3 (fun () -> suite ~jobs:1 ()) in
    (* Count the instrumented calls one enabled run actually makes. *)
    reset_all ();
    Noc_obs.Counters.set_enabled true;
    Noc_obs.Trace.set_enabled true;
    Noc_obs.Decisions.set_enabled true;
    suite ~jobs:1 ();
    let counter_ops =
      List.fold_left (fun acc (_, v) -> acc + v) 0 (Noc_obs.Counters.snapshot ())
    in
    let span_ops = Noc_obs.Trace.event_count () in
    let decision_ops = Noc_obs.Decisions.count () in
    let enabled_wall = Json_bench.median_of ~repeats:3 (fun () -> suite ~jobs:1 ()) in
    disable_all ();
    reset_all ();
    (* Price one disabled call of each primitive. *)
    let c = Noc_obs.Counters.counter "bench.obs.disabled" in
    let counter_ns = price ~n:10_000_000 (fun () -> Noc_obs.Counters.incr c) in
    let noop = Fun.const () in
    let span_ns =
      price ~n:1_000_000 (fun () -> Noc_obs.Trace.span "bench/noop" noop)
    in
    let finishes = Array.make 16 1.0 in
    let decision_ns =
      price ~n:1_000_000 (fun () ->
          Noc_obs.Decisions.record ~task:0 ~rule:"regret" ~chosen:0
            ~budgeted_deadline:1.0 ~finishes)
    in
    let estimated_overhead_pct =
      (float_of_int counter_ops *. counter_ns
      +. (float_of_int span_ops *. span_ns)
      +. (float_of_int decision_ops *. decision_ns))
      /. (disabled_wall *. 1e9)
      *. 100.
    in
    (* Determinism across job counts: counters and decision log must not
       depend on how the pool carved up the campaign. *)
    let captures =
      List.map
        (fun jobs ->
          reset_all ();
          Noc_obs.Counters.set_enabled true;
          Noc_obs.Decisions.set_enabled true;
          suite ~jobs ();
          let snapshot = Noc_obs.Counters.snapshot () in
          let decisions = Noc_obs.Decisions.export_jsonl () in
          disable_all ();
          reset_all ();
          (jobs, snapshot, decisions))
        job_counts
    in
    let counters_identical, decisions_identical =
      match captures with
      | [] | [ _ ] -> (true, true)
      | (_, snap1, dec1) :: rest ->
        ( List.for_all (fun (_, snap, _) -> snap = snap1) rest,
          List.for_all (fun (_, _, dec) -> dec = dec1) rest )
    in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf "  \"schema\": \"nocsched/bench-obs/v1\",\n";
    Buffer.add_string buf
      "  \"workload\": \"random-suite/category-i (scale 0.2)\",\n";
    Buffer.add_string buf
      (Printf.sprintf "  \"disabled_wall_s\": %.4f,\n" disabled_wall);
    Buffer.add_string buf
      (Printf.sprintf "  \"enabled_wall_s\": %.4f,\n" enabled_wall);
    Buffer.add_string buf
      (Printf.sprintf "  \"enabled_over_disabled\": %.3f,\n"
         (enabled_wall /. disabled_wall));
    Buffer.add_string buf
      (Printf.sprintf
         "  \"instrumented_calls\": {\"counter\": %d, \"span\": %d, \"decision\": \
          %d},\n"
         counter_ops span_ops decision_ops);
    Buffer.add_string buf
      (Printf.sprintf
         "  \"disabled_call_ns\": {\"counter\": %.2f, \"span\": %.2f, \"decision\": \
          %.2f},\n"
         counter_ns span_ns decision_ns);
    Buffer.add_string buf
      (Printf.sprintf "  \"estimated_disabled_overhead_pct\": %.4f,\n"
         estimated_overhead_pct);
    Buffer.add_string buf
      (Printf.sprintf "  \"overhead_threshold_pct\": %.1f,\n" overhead_threshold_pct);
    Buffer.add_string buf
      (Printf.sprintf "  \"jobs_checked\": [%s],\n"
         (String.concat ", " (List.map string_of_int job_counts)));
    Buffer.add_string buf
      (Printf.sprintf "  \"counters_identical_across_jobs\": %b,\n" counters_identical);
    Buffer.add_string buf
      (Printf.sprintf "  \"decisions_identical_across_jobs\": %b\n" decisions_identical);
    Buffer.add_string buf "}\n";
    output_string oc (Buffer.contents buf);
    close_out oc;
    print_string (Buffer.contents buf);
    Printf.printf "wrote %s\n" file;
    if estimated_overhead_pct > overhead_threshold_pct then begin
      Printf.eprintf
        "bench gate FAILED: disabled instrumentation overhead %.3f%% exceeds %.1f%%\n"
        estimated_overhead_pct overhead_threshold_pct;
      exit 1
    end;
    if not (counters_identical && decisions_identical) then begin
      Printf.eprintf
        "bench gate FAILED: observability output depends on --jobs (counters \
         identical: %b, decisions identical: %b)\n"
        counters_identical decisions_identical;
      exit 1
    end
end

(* ------------------------------------------------------------------ *)
(* Scheduling-service bench gate (serve): drives a real daemon over its
   Unix socket and persists BENCH_serve.json.

   Three measurements, two gates:
   - Handler latency ([Server.handle_line], the figure the daemon's
     serve/<op> histograms record), cold (every request a cache miss:
     full EAS + certification) vs warm (every request a certified cache
     hit). Timed in-process so the single-core scheduling jitter of
     running client and daemon domains side by side does not pollute
     the tail. Gate: warm p99 at least [warm_speedup_threshold]x below
     cold p99 — the cache must make repeat requests essentially free.
   - Sustained warm requests/sec through a real daemon over its Unix
     socket (informational: it is dominated by the round trip, not by
     scheduling).
   - Incremental rescheduling: the Fault_resched migrate-rebuild-repair
     ladder the daemon runs for [reschedule] requests vs a full EAS
     re-run on the same degraded platform, timed in-process so both
     sides pay identical instrumentation. Gate: ladder median at least
     [resched_speedup_threshold]x faster. *)

module Serve_bench = struct
  let warm_speedup_threshold = 10.
  let resched_speedup_threshold = 2.
  let n_graphs = 8
  let n_tasks = 60
  let warm_rounds = 50
  let fault_spec = "pe:5"

  let percentile samples ~p =
    Noc_util.Stats.percentile (Array.of_list samples) ~p

  let assert_ok reply =
    match Noc_obs.Json.parse reply with
    | Ok obj when Noc_obs.Json.member "ok" obj = Some (Noc_obs.Json.Bool true) ->
      obj
    | Ok _ | Error _ ->
      Printf.eprintf "serve bench: daemon refused a request: %s\n" reply;
      exit 1

  let int_member name obj =
    match Noc_obs.Json.member name obj with
    | Some (Noc_obs.Json.Number n) -> int_of_float n
    | Some _ | None -> -1

  let run file =
    let oc =
      try open_out file
      with Sys_error msg ->
        Printf.eprintf "cannot write bench output: %s\n" msg;
        exit 1
    in
    let platform = Noc_noc.Platform.heterogeneous_mesh ~seed:42 ~cols:4 ~rows:4 () in
    Noc_noc.Platform.warm_routes platform;
    let params = { Noc_tgff.Params.default with n_tasks } in
    let graphs =
      List.init n_graphs (fun i ->
          Noc_tgff.Generate.generate ~params ~platform ~seed:(3_000 + i))
    in
    let lines =
      List.map
        (fun ctg ->
          Noc_serve.Protocol.(
            request_to_line
              (Schedule
                 {
                   ctg_text = Noc_ctg.Ctg_io.to_string ctg;
                   mesh = (4, 4);
                   algo = Noc_experiments.Runner.Eas;
                   decisions = false;
                   dvfs = None;
                 })))
        graphs
    in
    (* Handler latency, in-process: one server state, cold pass fills
       the cache, warm passes hit it. *)
    let state =
      Noc_serve.Server.make_state
        (Noc_serve.Server.default_config ~socket_path:"unused")
    in
    let timed line =
      let t0 = Unix.gettimeofday () in
      let reply, _ = Noc_serve.Server.handle_line state line in
      ignore (assert_ok reply);
      (Unix.gettimeofday () -. t0) *. 1000.
    in
    let cold = List.map timed lines in
    let warm =
      List.concat (List.init warm_rounds (fun _ -> List.map timed lines))
    in
    (* Wire throughput: the same warm workload through a real daemon
       over its Unix socket. *)
    let socket_path =
      Printf.sprintf "%s/nocsched-bench-serve-%d.sock"
        (Filename.get_temp_dir_name ()) (Unix.getpid ())
    in
    let ready = Atomic.make false in
    let daemon =
      Domain.spawn (fun () ->
          Noc_serve.Server.run
            ~on_ready:(fun () -> Atomic.set ready true)
            { Noc_serve.Server.socket_path; capacity = 64; jobs = None })
    in
    while not (Atomic.get ready) do
      Unix.sleepf 0.002
    done;
    let wire_requests, wire_wall, stats_reply =
      Noc_serve.Client.with_connection ~socket_path (fun client ->
          let send line = ignore (assert_ok (Noc_serve.Client.request client line)) in
          List.iter send lines;
          let t0 = Unix.gettimeofday () in
          let n = ref 0 in
          for _ = 1 to warm_rounds do
            List.iter send lines;
            n := !n + List.length lines
          done;
          let wire_wall = Unix.gettimeofday () -. t0 in
          let stats_reply =
            assert_ok
              (Noc_serve.Client.request client
                 Noc_serve.Protocol.(request_to_line Stats))
          in
          ignore
            (assert_ok
               (Noc_serve.Client.request client
                  Noc_serve.Protocol.(request_to_line Shutdown)));
          (!n, wire_wall, stats_reply))
    in
    Domain.join daemon;
    let cache_stats =
      match Noc_obs.Json.member "cache" stats_reply with
      | Some obj ->
        (int_member "hits" obj, int_member "misses" obj, int_member "evictions" obj)
      | None -> (-1, -1, -1)
    in
    let cold_p50 = percentile cold ~p:50. and cold_p99 = percentile cold ~p:99. in
    let warm_p50 = percentile warm ~p:50. and warm_p99 = percentile warm ~p:99. in
    let warm_speedup = cold_p99 /. warm_p99 in
    let requests_per_sec = float_of_int wire_requests /. wire_wall in
    (* Incremental reschedule vs full degraded re-run, in-process. *)
    let faults =
      match Noc_fault.Fault_set.of_strings [ fault_spec ] with
      | Ok f -> f
      | Error msg ->
        Printf.eprintf "serve bench: bad fault spec: %s\n" msg;
        exit 1
    in
    let degraded = Noc_fault.Fault_set.degraded faults platform in
    let full_reruns = ref 0 in
    let resched_rows =
      List.map
        (fun ctg ->
          let base = (Noc_eas.Eas.schedule platform ctg).Noc_eas.Eas.schedule in
          let outcome = Noc_eas.Fault_resched.run platform ctg ~faults base in
          if outcome.Noc_eas.Fault_resched.stats.Noc_eas.Fault_resched.used_full_rerun
          then incr full_reruns;
          let incremental_s =
            Json_bench.median_of ~repeats:3 (fun () ->
                ignore (Noc_eas.Fault_resched.run platform ctg ~faults base))
          in
          let full_s =
            Json_bench.median_of ~repeats:3 (fun () ->
                ignore (Noc_eas.Eas.schedule ~degraded platform ctg))
          in
          (incremental_s, full_s))
        graphs
    in
    let incremental_median =
      Json_bench.median (List.map fst resched_rows) *. 1000.
    in
    let full_median = Json_bench.median (List.map snd resched_rows) *. 1000. in
    let resched_speedup = full_median /. incremental_median in
    let hits, misses, evictions = cache_stats in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf "  \"schema\": \"nocsched/bench-serve/v1\",\n";
    Buffer.add_string buf
      (Printf.sprintf
         "  \"workload\": \"tgff %d-task x%d on 4x4 mesh, eas, unix socket\",\n"
         n_tasks n_graphs);
    Buffer.add_string buf
      (Printf.sprintf "  \"requests_per_sec\": %.0f,\n" requests_per_sec);
    Buffer.add_string buf
      (Printf.sprintf "  \"cold_p50_ms\": %.3f,\n  \"cold_p99_ms\": %.3f,\n"
         cold_p50 cold_p99);
    Buffer.add_string buf
      (Printf.sprintf "  \"warm_p50_ms\": %.3f,\n  \"warm_p99_ms\": %.3f,\n"
         warm_p50 warm_p99);
    Buffer.add_string buf
      (Printf.sprintf "  \"warm_speedup_p99\": %.1f,\n" warm_speedup);
    Buffer.add_string buf
      (Printf.sprintf "  \"warm_speedup_threshold\": %.1f,\n"
         warm_speedup_threshold);
    Buffer.add_string buf
      (Printf.sprintf
         "  \"cache\": {\"hits\": %d, \"misses\": %d, \"evictions\": %d},\n" hits
         misses evictions);
    Buffer.add_string buf (Printf.sprintf "  \"fault\": %S,\n" fault_spec);
    Buffer.add_string buf
      (Printf.sprintf "  \"resched_incremental_median_ms\": %.3f,\n"
         incremental_median);
    Buffer.add_string buf
      (Printf.sprintf "  \"resched_full_rerun_median_ms\": %.3f,\n" full_median);
    Buffer.add_string buf
      (Printf.sprintf "  \"resched_speedup\": %.2f,\n" resched_speedup);
    Buffer.add_string buf
      (Printf.sprintf "  \"resched_speedup_threshold\": %.1f,\n"
         resched_speedup_threshold);
    Buffer.add_string buf
      (Printf.sprintf "  \"resched_ladder_full_reruns\": %d\n" !full_reruns);
    Buffer.add_string buf "}\n";
    output_string oc (Buffer.contents buf);
    close_out oc;
    print_string (Buffer.contents buf);
    Printf.printf "wrote %s\n" file;
    if warm_speedup < warm_speedup_threshold then begin
      Printf.eprintf
        "bench gate FAILED: warm cache-hit p99 %.3f ms is only %.1fx below the \
         cold-schedule p99 %.3f ms (need >= %.1fx)\n"
        warm_p99 warm_speedup cold_p99 warm_speedup_threshold;
      exit 1
    end;
    if resched_speedup < resched_speedup_threshold then begin
      Printf.eprintf
        "bench gate FAILED: incremental reschedule median %.3f ms is only %.2fx \
         faster than the %.3f ms full re-run (need >= %.1fx)\n"
        incremental_median resched_speedup full_median resched_speedup_threshold;
      exit 1
    end
end

(* ------------------------------------------------------------------ *)
(* Turn-model routing bench gate (routing): relation-proof wall time
   per model on the 8x8 acceptance mesh, plus a Monte-Carlo detour
   survivability sweep over sampled two-link-fault sets on the 4x4
   mesh (the fault_campaign seeding idiom). Persists BENCH_routing.json.

   Three gates:
   - Every model's relation proof on 8x8 must come back clean — zero
     diagnostics, acyclic CDG (the PR's acceptance criterion).
   - Soundness of the turn-legal detour search: on every sampled fault
     set whose degraded route set stays entirely inside a model's
     turn-legal walk set, the CDG must be acyclic (Glass & Ni, checked
     empirically). Fault sets that force a BFS fallback — a failed
     west link can strand west-first, and odd-even provably has no
     turn-legal 5->6 route under the PR-3 pair — carry no guarantee
     and are reported informationally.
   - The explicit PR-3 two-fault case must be solved by west-first:
     all detours turn-legal and the route set acyclic. *)
module Routing_bench = struct
  module Turn_model = Noc_noc.Turn_model
  module Deadlock = Noc_analysis.Deadlock
  module Fault_set = Noc_fault.Fault_set

  let n_fault_sets = 12
  let proof_repeats = 5

  let median samples = Noc_util.Stats.percentile (Array.of_list samples) ~p:50.

  let run file =
    let oc =
      try open_out file
      with Sys_error msg ->
        Printf.eprintf "cannot write bench output: %s\n" msg;
        exit 1
    in
    (* Relation proofs on the 8x8 acceptance mesh. *)
    let proof_platform =
      Noc_noc.Platform.heterogeneous_mesh ~seed:42 ~cols:8 ~rows:8 ()
    in
    let proofs =
      List.map
        (fun routing ->
          let samples =
            List.init proof_repeats (fun _ ->
                let t0 = Unix.gettimeofday () in
                ignore (Deadlock.check_routing ~routing proof_platform);
                (Unix.gettimeofday () -. t0) *. 1000.)
          in
          let diagnostics = Deadlock.check_routing ~routing proof_platform in
          let cdg = Deadlock.cdg_of_routing routing proof_platform in
          ( routing,
            median samples,
            List.length diagnostics,
            Noc_analysis.Cdg.n_channels cdg,
            Noc_analysis.Cdg.n_dependencies cdg ))
        Turn_model.all
    in
    (* Monte-Carlo detour survivability on the 4x4 mesh: sampled
       two-link fault sets plus the explicit PR-3 pair. *)
    let sample_platform =
      Noc_noc.Platform.heterogeneous_mesh ~seed:42 ~cols:4 ~rows:4 ()
    in
    let fault_sets =
      List.init n_fault_sets (fun i ->
          ( Printf.sprintf "sample-%d" i,
            Fault_set.sample ~seed:(700 + i) ~platform:sample_platform
              ~n_link_faults:2 ~n_pe_faults:0 () ))
      @ [
          ( "pr3-two-fault",
            match Fault_set.of_strings [ "link:5-6"; "link:9-5" ] with
            | Ok f -> f
            | Error msg ->
              Printf.eprintf "routing bench: bad fault spec: %s\n" msg;
              exit 1 );
        ]
    in
    let all_turn_legal routing topo routes =
      List.for_all
        (fun route ->
          let rec ok = function
            | prev :: (via :: next :: _ as rest) ->
              Turn_model.turn_legal routing topo ~prev ~via ~next && ok rest
            | _ -> true
          in
          ok route)
        routes
    in
    let survival =
      List.map
        (fun routing ->
          let platform =
            Noc_noc.Platform.heterogeneous_mesh ~seed:42 ~routing ~cols:4
              ~rows:4 ()
          in
          let topo = Noc_noc.Platform.topology platform in
          let per_set =
            List.map
              (fun (label, faults) ->
                let cyclic =
                  List.exists
                    (fun (d : Noc_analysis.Diagnostic.t) ->
                      d.rule = "deadlock/cyclic-cdg")
                    (Deadlock.check_degraded platform faults)
                in
                let routes, _ =
                  Deadlock.degraded_routes (Fault_set.degraded faults platform)
                in
                (label, (all_turn_legal routing topo routes, not cyclic)))
              fault_sets
          in
          (routing, per_set))
        Turn_model.all
    in
    (* Render, persist, gate. *)
    Printf.printf "relation proofs (8x8 mesh, median of %d runs):\n" proof_repeats;
    List.iter
      (fun (routing, ms, diags, channels, deps) ->
        Printf.printf "  %-10s  %7.2f ms  %d diagnostics  %d channels  %d deps\n"
          (Turn_model.name routing) ms diags channels deps)
      proofs;
    Printf.printf "degraded-detour survivability (4x4 mesh, %d fault sets):\n"
      (List.length fault_sets);
    List.iter
      (fun (routing, per_set) ->
        let count f = List.length (List.filter (fun (_, r) -> f r) per_set) in
        let acyclic = count snd and legal = count fst in
        let pr3_legal, pr3_acyclic = List.assoc "pr3-two-fault" per_set in
        Printf.printf
          "  %-10s  %2d/%d acyclic  %2d/%d fully turn-legal  (pr3 two-fault: \
           %s, %s)\n"
          (Turn_model.name routing) acyclic (List.length per_set) legal
          (List.length per_set)
          (if pr3_acyclic then "acyclic" else "cyclic")
          (if pr3_legal then "turn-legal" else "BFS fallback"))
      survival;
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf "  \"schema\": \"nocsched/bench-routing/v1\",\n";
    Buffer.add_string buf "  \"proof_mesh\": \"8x8\",\n";
    Buffer.add_string buf "  \"proofs\": [\n";
    List.iteri
      (fun i (routing, ms, diags, channels, deps) ->
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"routing\": \"%s\", \"wall_ms\": %.3f, \"diagnostics\": %d, \
              \"channels\": %d, \"dependencies\": %d}%s\n"
             (Turn_model.name routing) ms diags channels deps
             (if i < List.length proofs - 1 then "," else "")))
      proofs;
    Buffer.add_string buf "  ],\n";
    Buffer.add_string buf "  \"campaign_mesh\": \"4x4\",\n";
    Buffer.add_string buf
      (Printf.sprintf "  \"fault_sets\": %d,\n" (List.length fault_sets));
    Buffer.add_string buf "  \"survival\": [\n";
    List.iteri
      (fun i (routing, per_set) ->
        let count f = List.length (List.filter (fun (_, r) -> f r) per_set) in
        let pr3_legal, pr3_acyclic = List.assoc "pr3-two-fault" per_set in
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"routing\": \"%s\", \"acyclic\": %d, \"turn_legal\": %d, \
              \"total\": %d, \"pr3_acyclic\": %b, \"pr3_turn_legal\": %b}%s\n"
             (Turn_model.name routing) (count snd) (count fst)
             (List.length per_set) pr3_acyclic pr3_legal
             (if i < List.length survival - 1 then "," else "")))
      survival;
    Buffer.add_string buf "  ],\n";
    let proofs_clean = List.for_all (fun (_, _, d, _, _) -> d = 0) proofs in
    let legal_implies_acyclic =
      List.for_all
        (fun (_, per_set) ->
          List.for_all (fun (_, (legal, acyclic)) -> (not legal) || acyclic)
            per_set)
        survival
    in
    let pr3_legal, pr3_acyclic =
      List.assoc "pr3-two-fault" (List.assoc Turn_model.West_first survival)
    in
    let pr3_solved = pr3_legal && pr3_acyclic in
    Buffer.add_string buf
      (Printf.sprintf
         "  \"gate\": {\"proofs_clean\": %b, \"legal_implies_acyclic\": %b, \
          \"pr3_solved_by_west_first\": %b}\n"
         proofs_clean legal_implies_acyclic pr3_solved);
    Buffer.add_string buf "}\n";
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "wrote %s\n" file;
    if not proofs_clean then begin
      Printf.eprintf
        "bench gate FAILED: a turn-model relation proof on the 8x8 mesh \
         reported diagnostics\n";
      exit 1
    end;
    if not legal_implies_acyclic then begin
      Printf.eprintf
        "bench gate FAILED: a fully turn-legal degraded route set has a \
         cyclic CDG (turn-model theorem violated)\n";
      exit 1
    end;
    if not pr3_solved then begin
      Printf.eprintf
        "bench gate FAILED: west-first no longer solves the PR-3 two-fault \
         case (turn-legal %b, acyclic %b)\n"
        pr3_legal pr3_acyclic;
      exit 1
    end
end

(* Mapping-search bench gate (mapping): delta-eval latency vs a full
   objective recompute on the category-III acceptance instance
   (~2000 tasks on the 16x16 mesh), search determinism across job
   counts and chain prefixes, and the persisted energy/latency Pareto
   table. Persists BENCH_mapping.json.

   Three gates:
   - A swap scored with [Objective.swap_delta] (O(incident arcs)) must
     be >= 20x faster than [Objective.full_value] at acceptance scale.
   - At balance weight 0 the annealed point's pinned-EAS energy must
     not exceed the identity mapping's on any swept mesh: chain 0
     starts from identity and the pure-energy objective equals the
     Eq.-3 total, so the best static survivor can only improve on it.
   - [Search.run] must return identical results at jobs 1/2/4, and the
     first chains of a wider search must reproduce a narrower one
     (per-chain PRNG streams depend only on (seed, chain)). *)
module Mapping_bench = struct
  module Objective = Noc_map.Objective
  module Search = Noc_map.Search

  let delta_speedup_threshold = 20.
  let samples = 50
  let delta_batch = 200
  let full_batch = 5

  let percentile samples ~p =
    Noc_util.Stats.percentile (Array.of_list samples) ~p

  (* Everything [Search.run] computed, in a structurally comparable
     shape (floats compare bitwise under (=) here — the invariance
     being gated is exact, not approximate). *)
  let digest (r : Search.result) =
    ( List.map
        (fun (c : Search.chain_result) ->
          (c.chain, c.value, c.accepted, Array.to_list c.best_mapping))
        r.chain_results,
      List.map
        (fun (c : Search.candidate) ->
          ( Search.origin_name c.origin, c.static_value, c.energy, c.makespan,
            c.misses, Array.to_list c.mapping ))
        r.candidates,
      Array.to_list r.winner.mapping )

  let chain_digests (r : Search.result) =
    List.map
      (fun (c : Search.chain_result) ->
        (c.chain, c.value, c.accepted, Array.to_list c.best_mapping))
      r.chain_results

  let run ~quick file =
    let oc =
      try open_out file
      with Sys_error msg ->
        Printf.eprintf "cannot write bench output: %s\n" msg;
        exit 1
    in
    (* Delta vs full recompute on the acceptance instance. The deltas
       are ~100 ns each, so both paths are timed in batches and the
       percentiles are over per-batch means. *)
    let cols, rows, scale = if quick then (8, 8, 0.2) else (16, 16, 1.0) in
    let platform = Noc_noc.Platform.heterogeneous_mesh ~seed:42 ~cols ~rows () in
    let params =
      Noc_tgff.Category.scaled_params Noc_tgff.Category.Category_iii ~scale
    in
    let seed = Noc_tgff.Category.seed_of Noc_tgff.Category.Category_iii 1 in
    let ctg = Noc_tgff.Generate.generate ~params ~platform ~seed in
    let kernel = Noc_eas.Kernel.build platform ctg in
    let tables = Objective.lift platform kernel ctg in
    let n_tasks = Noc_ctg.Ctg.n_tasks ctg in
    let state =
      Objective.create tables
        (Search.identity_mapping ~n_tasks ~n_pes:(cols * rows))
    in
    let rng = Noc_util.Prng.create ~seed:7 in
    let pairs =
      (* Fixed proposal set so the RNG is outside the timed region. *)
      Array.init delta_batch (fun _ ->
          ( Noc_util.Prng.int rng ~bound:n_tasks,
            Noc_util.Prng.int rng ~bound:n_tasks ))
    in
    let time_batch n f =
      let t0 = Unix.gettimeofday () in
      for i = 0 to n - 1 do
        f i
      done;
      (Unix.gettimeofday () -. t0) /. float_of_int n *. 1e9
    in
    let sink = ref 0. in
    let delta_ns =
      List.init samples (fun _ ->
          time_batch delta_batch (fun i ->
              let a, b = pairs.(i) in
              sink := !sink +. Objective.swap_delta state ~a ~b))
    in
    let mapping = Objective.mapping state in
    let full_ns =
      List.init samples (fun _ ->
          time_batch full_batch (fun _ ->
              sink := !sink +. Objective.full_value tables mapping))
    in
    ignore !sink;
    let delta_p50 = percentile delta_ns ~p:50. in
    let delta_p99 = percentile delta_ns ~p:99. in
    let full_p50 = percentile full_ns ~p:50. in
    let full_p99 = percentile full_ns ~p:99. in
    let delta_speedup = full_p50 /. delta_p50 in
    (* Determinism on a smaller instance (the invariance is exact at
       every size; this keeps four full searches cheap). *)
    let det_platform =
      Noc_noc.Platform.heterogeneous_mesh ~seed:42 ~cols:8 ~rows:8 ()
    in
    let det_params =
      Noc_tgff.Category.scaled_params Noc_tgff.Category.Category_iii ~scale:0.25
    in
    let det_ctg =
      Noc_tgff.Generate.generate ~params:det_params ~platform:det_platform ~seed
    in
    let det_kernel = Noc_eas.Kernel.build det_platform det_ctg in
    let search ?chains jobs =
      let params =
        match chains with
        | None -> Search.default_params
        | Some chains -> { Search.default_params with chains }
      in
      Search.run ~jobs ~params ~kernel:det_kernel det_platform det_ctg
    in
    let r1 = search 1 in
    let jobs_invariant =
      digest (search 2) = digest r1 && digest (search 4) = digest r1
    in
    let chain_prefix_invariant =
      (* The first 2 chains of the default 4-chain search must be the
         2-chain search verbatim (streams keyed by (seed, chain)). *)
      let narrow = chain_digests (search ~chains:2 1) in
      List.filteri (fun i _ -> i < List.length narrow) (chain_digests r1)
      = narrow
    in
    (* The persisted Pareto table, one annealed point per balance
       weight vs the identity placement. *)
    let pareto =
      if quick then
        Noc_experiments.Topology_compare.pareto ~meshes:[ (8, 8) ] ~scale:0.2 ()
      else Noc_experiments.Topology_compare.pareto ()
    in
    let sa_vs_identity =
      List.map
        (fun (r : Noc_experiments.Topology_compare.pareto_row) ->
          let find label =
            List.find
              (fun (p : Noc_experiments.Topology_compare.point) -> p.label = label)
              r.points
          in
          (r.mesh, find "identity", find "sa/balance=0"))
        pareto.Noc_experiments.Topology_compare.rows
    in
    let energy_gate =
      (* Tiny relative epsilon: the two pinned-EAS totals are summed in
         schedule order, the static objective in table order. *)
      List.for_all
        (fun ( _,
               (id : Noc_experiments.Topology_compare.point),
               (sa : Noc_experiments.Topology_compare.point) ) ->
          sa.energy <= id.energy *. (1. +. 1e-9))
        sa_vs_identity
    in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf "  \"schema\": \"nocsched/bench-mapping/v1\",\n";
    Buffer.add_string buf
      (Printf.sprintf
         "  \"workload\": \"category-III tgff (%d tasks, %d arcs) on %dx%d mesh\",\n"
         n_tasks (Noc_ctg.Ctg.n_edges ctg) cols rows);
    Buffer.add_string buf
      (Printf.sprintf "  \"delta_p50_ns\": %.1f,\n  \"delta_p99_ns\": %.1f,\n"
         delta_p50 delta_p99);
    Buffer.add_string buf
      (Printf.sprintf "  \"full_p50_ns\": %.1f,\n  \"full_p99_ns\": %.1f,\n"
         full_p50 full_p99);
    Buffer.add_string buf
      (Printf.sprintf "  \"delta_speedup_p50\": %.1f,\n" delta_speedup);
    Buffer.add_string buf
      (Printf.sprintf "  \"delta_speedup_threshold\": %.1f,\n"
         delta_speedup_threshold);
    Buffer.add_string buf "  \"sa_vs_identity\": [\n";
    List.iteri
      (fun i ( (mcols, mrows),
               (id : Noc_experiments.Topology_compare.point),
               (sa : Noc_experiments.Topology_compare.point) ) ->
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"mesh\": \"%dx%d\", \"identity_nj\": %.1f, \"sa_nj\": %.1f, \
              \"saving_pct\": %.1f, \"sa_misses\": %d, \"sa_cert_errors\": %d}%s\n"
             mcols mrows id.energy sa.energy
             ((id.energy -. sa.energy) /. id.energy *. 100.)
             sa.misses sa.cert_errors
             (if i < List.length sa_vs_identity - 1 then "," else "")))
      sa_vs_identity;
    Buffer.add_string buf "  ],\n";
    Buffer.add_string buf "  \"pareto\":\n";
    Buffer.add_string buf
      (Noc_experiments.Topology_compare.pareto_to_json pareto);
    Buffer.add_string buf "  ,\n";
    Buffer.add_string buf
      (Printf.sprintf
         "  \"gate\": {\"delta_speedup_ok\": %b, \"sa_energy_le_identity\": %b, \
          \"jobs_invariant\": %b, \"chain_prefix_invariant\": %b}\n"
         (delta_speedup >= delta_speedup_threshold)
         energy_gate jobs_invariant chain_prefix_invariant);
    Buffer.add_string buf "}\n";
    output_string oc (Buffer.contents buf);
    close_out oc;
    print_string (Noc_experiments.Topology_compare.render_pareto pareto);
    Printf.printf
      "delta %.0f ns vs full recompute %.0f ns (p50): %.0fx; jobs invariant: %b; \
       chain prefix invariant: %b\n"
      delta_p50 full_p50 delta_speedup jobs_invariant chain_prefix_invariant;
    Printf.printf "wrote %s\n" file;
    if delta_speedup < delta_speedup_threshold then begin
      Printf.eprintf
        "bench gate FAILED: swap delta-eval p50 %.0f ns is only %.1fx faster \
         than the %.0f ns full recompute (need >= %.1fx)\n"
        delta_p50 delta_speedup full_p50 delta_speedup_threshold;
      exit 1
    end;
    if not energy_gate then begin
      Printf.eprintf
        "bench gate FAILED: an annealed balance=0 point costs more pinned-EAS \
         energy than the identity mapping\n";
      exit 1
    end;
    if not jobs_invariant then begin
      Printf.eprintf
        "bench gate FAILED: Search.run results differ across --jobs 1/2/4\n";
      exit 1
    end;
    if not chain_prefix_invariant then begin
      Printf.eprintf
        "bench gate FAILED: the first chains of a 4-chain search do not \
         reproduce the 2-chain search\n";
      exit 1
    end
end

(* DVFS slack-reclamation gate (dvfs): runs the EAS vs EAS+DVFS
   ablation campaign and persists BENCH_dvfs.json.

   Four gates:
   - Every category-I row must reclaim energy (> 0 nJ): the paper's
     sparse suites leave real slack, so a zero here means the pass
     stopped finding it.
   - No scaled schedule may miss a deadline its unscaled schedule met
     (the reclamation pass only ever slows a task into proven slack).
   - Every scaled schedule must pass [Certify.check_scaled] — the gate
     counts certification failures and requires zero.
   - The campaign's rows must be structurally identical at
     --jobs 1/2/4 (fixed work list fanned over the pool). *)
module Dvfs_bench = struct
  module C = Noc_experiments.Dvfs_campaign

  let digest rows =
    List.map
      (fun (r : C.row) ->
        ( r.name, r.tasks, r.eas_energy, r.dvfs_energy, r.downclocked,
          r.base_misses, r.scaled_misses, r.certified ))
      rows

  let run ~quick file =
    let oc =
      try open_out file
      with Sys_error msg ->
        Printf.eprintf "cannot write bench output: %s\n" msg;
        exit 1
    in
    let campaign jobs =
      if quick then C.run ~jobs ~indices:[ 0; 1 ] ~scale:0.3 ()
      else C.run ~jobs ()
    in
    let rows = campaign 1 in
    let jobs_invariant =
      digest (campaign 2) = digest rows && digest (campaign 4) = digest rows
    in
    let cat1 = List.filter (fun (r : C.row) -> r.category = "cat1") rows in
    let cat1_reclaims =
      cat1 <> [] && List.for_all (fun (r : C.row) -> r.reclaimed > 0.) cat1
    in
    let new_misses =
      List.exists (fun (r : C.row) -> r.scaled_misses > r.base_misses) rows
    in
    let cert_failures =
      List.length (List.filter (fun (r : C.row) -> not r.certified) rows)
    in
    let total_before =
      List.fold_left (fun a (r : C.row) -> a +. r.eas_energy) 0. rows
    in
    let total_after =
      List.fold_left (fun a (r : C.row) -> a +. r.dvfs_energy) 0. rows
    in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf "  \"schema\": \"nocsched/bench-dvfs/v1\",\n";
    Buffer.add_string buf
      (Printf.sprintf "  \"vf_levels\": \"%s\",\n"
         (Noc_dvfs.Vf_table.to_string Noc_dvfs.Vf_table.default));
    Buffer.add_string buf "  \"rows\": [\n";
    List.iteri
      (fun i (r : C.row) ->
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"name\": \"%s\", \"category\": \"%s\", \"tasks\": %d, \
              \"eas_nj\": %.1f, \"dvfs_nj\": %.1f, \"saving_pct\": %.1f, \
              \"downclocked\": %d, \"base_misses\": %d, \"scaled_misses\": %d, \
              \"certified\": %b}%s\n"
             r.name r.category r.tasks r.eas_energy r.dvfs_energy
             (C.saving r *. 100.)
             r.downclocked r.base_misses r.scaled_misses r.certified
             (if i < List.length rows - 1 then "," else "")))
      rows;
    Buffer.add_string buf "  ],\n";
    Buffer.add_string buf
      (Printf.sprintf
         "  \"total_eas_nj\": %.1f,\n  \"total_dvfs_nj\": %.1f,\n\
         \  \"total_saving_pct\": %.1f,\n"
         total_before total_after
         ((total_before -. total_after) /. total_before *. 100.));
    Buffer.add_string buf
      (Printf.sprintf
         "  \"gate\": {\"cat1_reclaims\": %b, \"no_new_misses\": %b, \
          \"cert_failures\": %d, \"jobs_invariant\": %b}\n"
         cat1_reclaims (not new_misses) cert_failures jobs_invariant);
    Buffer.add_string buf "}\n";
    output_string oc (Buffer.contents buf);
    close_out oc;
    print_string (C.render rows);
    Printf.printf
      "total %.1f -> %.1f nJ (%.1f%% reclaimed); jobs invariant: %b\n"
      total_before total_after
      ((total_before -. total_after) /. total_before *. 100.)
      jobs_invariant;
    Printf.printf "wrote %s\n" file;
    if not cat1_reclaims then begin
      Printf.eprintf
        "bench gate FAILED: a category-I benchmark reclaimed no energy\n";
      exit 1
    end;
    if new_misses then begin
      Printf.eprintf
        "bench gate FAILED: a scaled schedule misses a deadline its unscaled \
         schedule met\n";
      exit 1
    end;
    if cert_failures > 0 then begin
      Printf.eprintf
        "bench gate FAILED: %d scaled schedule(s) failed certification\n"
        cert_failures;
      exit 1
    end;
    if not jobs_invariant then begin
      Printf.eprintf
        "bench gate FAILED: dvfs campaign rows differ across --jobs 1/2/4\n";
      exit 1
    end
end

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (match args with
  | [ "--json"; file ] ->
    Json_bench.run file;
    exit 0
  | "--json" :: _ ->
    prerr_endline "usage: bench/main.exe --json FILE";
    exit 2
  | _ -> ());
  let quick = List.mem "--quick" args in
  let wanted = List.filter (fun a -> a <> "--quick") args in
  let all =
    [
      "fig5"; "fig6"; "tab1"; "tab2"; "tab3"; "fig7"; "split"; "ablation"; "topo";
      "weights"; "repairmoves"; "dvs"; "baselines"; "buffering"; "faults";
      "parallel"; "obs"; "serve"; "routing"; "mapping"; "dvfs";
    ]
  in
  let wanted = if wanted = [] then all else wanted in
  let t0 = Unix.gettimeofday () in
  List.iter
    (function
      | "fig5" -> fig5 ~quick
      | "fig6" -> fig6 ~quick
      | "tab1" -> tab Noc_experiments.Msb_tables.Encoder "Table 1: A/V encoder"
      | "tab2" -> tab Noc_experiments.Msb_tables.Decoder "Table 2: A/V decoder"
      | "tab3" ->
        tab Noc_experiments.Msb_tables.Integrated "Table 3: A/V encoder/decoder"
      | "fig7" -> fig7 ()
      | "split" -> split ()
      | "ablation" -> ablation ()
      | "topo" -> topo ()
      | "weights" -> weights ()
      | "repairmoves" -> repair_moves ~quick
      | "dvs" -> dvs ()
      | "baselines" -> baselines ()
      | "buffering" -> buffering ()
      | "faults" -> faults ~quick
      | "parallel" ->
        section "Parallel execution: serial vs pooled campaign gate";
        Parallel_bench.run ~quick "BENCH_parallel.json"
      | "obs" ->
        section "Observability: disabled-overhead and determinism gate";
        Obs_bench.run "BENCH_obs.json"
      | "serve" ->
        section "Scheduling service: cache-hit latency and reschedule gate";
        Serve_bench.run "BENCH_serve.json"
      | "routing" ->
        section "Turn-model routing: relation proofs and detour survivability";
        Routing_bench.run "BENCH_routing.json"
      | "mapping" ->
        section "Mapping search: delta-eval, determinism and Pareto gate";
        Mapping_bench.run ~quick "BENCH_mapping.json"
      | "dvfs" ->
        section "DVFS slack reclamation: energy, deadline and certification gate";
        Dvfs_bench.run ~quick "BENCH_dvfs.json"
      | "micro" -> micro ()
      | other ->
        Printf.eprintf "unknown experiment %S (known: %s micro)\n" other
          (String.concat " " all);
        exit 2)
    wanted;
  Printf.printf "\ntotal wall time: %.1f s\n" (Unix.gettimeofday () -. t0)
