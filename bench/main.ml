(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (see DESIGN.md's experiment index), plus Bechamel
   micro-benchmarks of the schedulers and the timeline substrate.

   Usage:
     dune exec bench/main.exe                 # every experiment, paper size
     dune exec bench/main.exe -- --quick      # scaled-down graphs
     dune exec bench/main.exe -- fig5 tab1    # a subset
   Experiments: fig5 fig6 tab1 tab2 tab3 fig7 split ablation micro. *)

let section title =
  Printf.printf "\n================ %s ================\n%!" title

let run_fig ~quick kind title =
  section title;
  let scale = if quick then Some 0.2 else None in
  let result = Noc_experiments.Random_suite.run ?scale kind in
  print_string (Noc_experiments.Random_suite.render result)

let fig5 ~quick = run_fig ~quick Noc_tgff.Category.Category_i
    "Fig. 5: random benchmarks, category I (energy, nJ)"

let fig6 ~quick = run_fig ~quick Noc_tgff.Category.Category_ii
    "Fig. 6: random benchmarks, category II (tight deadlines)"

let tab which title =
  section title;
  print_string (Noc_experiments.Msb_tables.render (Noc_experiments.Msb_tables.run which))

let fig7 () =
  section "Fig. 7: performance / energy trade-off";
  print_string (Noc_experiments.Tradeoff.render (Noc_experiments.Tradeoff.run ()))

let split () =
  section "Sec. 6.2 in-text: computation/communication energy split";
  print_string (Noc_experiments.Energy_split.render (Noc_experiments.Energy_split.run ()))

let ablation () =
  section "Ablation: contention-aware vs fixed-delay communication";
  print_string (Noc_experiments.Ablation.render (Noc_experiments.Ablation.run ()))

let topo () =
  section "Extension (Sec. 7): mesh vs torus vs honeycomb";
  print_string
    (Noc_experiments.Topology_compare.render (Noc_experiments.Topology_compare.run ()))

let weights () =
  section "Ablation: slack-weighting schemes (EAS Step 1)";
  print_string
    (Noc_experiments.Weight_ablation.render (Noc_experiments.Weight_ablation.run ()))

let buffering () =
  section "Eq. (1) validation: measured buffering energy";
  print_string (Noc_experiments.Buffering.render (Noc_experiments.Buffering.run ()))

let baselines () =
  section "Extended baselines: EAS vs EDF vs DLS vs energy-greedy";
  print_string
    (Noc_experiments.Baselines_compare.render (Noc_experiments.Baselines_compare.run ()))

let dvs () =
  section "Extension: DVS slack reclamation on top of EAS";
  print_string
    (Noc_experiments.Dvs_extension.render (Noc_experiments.Dvs_extension.run ()))

let repair_moves ~quick =
  section "Ablation: repair move kinds (EAS Step 3)";
  let scale = if quick then Some 0.3 else None in
  print_string
    (Noc_experiments.Repair_ablation.render (Noc_experiments.Repair_ablation.run ?scale ()))

let micro () =
  section "Micro-benchmarks (Bechamel)";
  let open Bechamel in
  let open Toolkit in
  let platform = Noc_noc.Platform.heterogeneous_mesh ~seed:42 ~cols:4 ~rows:4 () in
  let params = { Noc_tgff.Params.default with n_tasks = 60 } in
  let ctg = Noc_tgff.Generate.generate ~params ~platform ~seed:0 in
  let msb = Noc_msb.Graphs.integrated ~platform:Noc_msb.Platforms.av_3x3
      ~clip:Noc_msb.Profile.Foreman () in
  let tests =
    Test.make_grouped ~name:"nocsched"
      [
        Test.make ~name:"eas/tgff-60"
          (Staged.stage (fun () ->
               ignore (Noc_eas.Eas.schedule platform ctg)));
        Test.make ~name:"eas-base/tgff-60"
          (Staged.stage (fun () ->
               ignore (Noc_eas.Eas.schedule ~repair:false platform ctg)));
        Test.make ~name:"edf/tgff-60"
          (Staged.stage (fun () -> ignore (Noc_edf.Edf.schedule platform ctg)));
        Test.make ~name:"eas/msb-40"
          (Staged.stage (fun () ->
               ignore (Noc_eas.Eas.schedule Noc_msb.Platforms.av_3x3 msb)));
        Test.make ~name:"budget/tgff-60"
          (Staged.stage (fun () -> ignore (Noc_eas.Budget.compute ctg)));
        Test.make ~name:"simulate/msb-40"
          (Staged.stage
             (let s =
                (Noc_eas.Eas.schedule Noc_msb.Platforms.av_3x3 msb).schedule
              in
              fun () -> ignore (Noc_sim.Executor.run Noc_msb.Platforms.av_3x3 msb s)));
        Test.make ~name:"timeline-list/reserve-gap"
          (Staged.stage (fun () ->
               let tl = Noc_util.Timeline.create () in
               for i = 0 to 99 do
                 let start = float_of_int (2 * i) in
                 Noc_util.Timeline.reserve tl
                   (Noc_util.Interval.make ~start ~stop:(start +. 1.))
               done;
               ignore (Noc_util.Timeline.earliest_gap tl ~after:0. ~duration:1.5)));
        Test.make ~name:"timeline-map/reserve-gap"
          (Staged.stage (fun () ->
               let tl = Noc_util.Timeline_map.create () in
               for i = 0 to 99 do
                 let start = float_of_int (2 * i) in
                 Noc_util.Timeline_map.reserve tl
                   (Noc_util.Interval.make ~start ~stop:(start +. 1.))
               done;
               ignore (Noc_util.Timeline_map.earliest_gap tl ~after:0. ~duration:1.5)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let ns =
        match Analyze.OLS.estimates ols with Some (t :: _) -> t | Some [] | None -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  List.iter
    (fun (name, ns) -> Printf.printf "%-28s %12.1f ns/run (%.3f ms)\n" name ns (ns /. 1e6))
    (List.sort compare !rows)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  let wanted = List.filter (fun a -> a <> "--quick") args in
  let all =
    [
      "fig5"; "fig6"; "tab1"; "tab2"; "tab3"; "fig7"; "split"; "ablation"; "topo";
      "weights"; "repairmoves"; "dvs"; "baselines"; "buffering";
    ]
  in
  let wanted = if wanted = [] then all else wanted in
  let t0 = Unix.gettimeofday () in
  List.iter
    (function
      | "fig5" -> fig5 ~quick
      | "fig6" -> fig6 ~quick
      | "tab1" -> tab Noc_experiments.Msb_tables.Encoder "Table 1: A/V encoder"
      | "tab2" -> tab Noc_experiments.Msb_tables.Decoder "Table 2: A/V decoder"
      | "tab3" ->
        tab Noc_experiments.Msb_tables.Integrated "Table 3: A/V encoder/decoder"
      | "fig7" -> fig7 ()
      | "split" -> split ()
      | "ablation" -> ablation ()
      | "topo" -> topo ()
      | "weights" -> weights ()
      | "repairmoves" -> repair_moves ~quick
      | "dvs" -> dvs ()
      | "baselines" -> baselines ()
      | "buffering" -> buffering ()
      | "micro" -> micro ()
      | other ->
        Printf.eprintf "unknown experiment %S (known: %s micro)\n" other
          (String.concat " " all);
        exit 2)
    wanted;
  Printf.printf "\ntotal wall time: %.1f s\n" (Unix.gettimeofday () -. t0)
